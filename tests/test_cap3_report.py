"""Tests for contig placements and the ACE/info reports."""

import random

import pytest

from repro.bio.fasta import FastaRecord
from repro.cap3.assembler import Contig, assemble
from repro.cap3.report import format_ace, format_info, write_ace


def random_dna(rng, n):
    return "".join(rng.choice("ACGT") for _ in range(n))


@pytest.fixture(scope="module")
def assembly():
    rng = random.Random(21)
    genome = random_dna(rng, 600)
    reads = [
        FastaRecord(id="r0", seq=genome[:250]),
        FastaRecord(id="r1", seq=genome[150:400]),
        FastaRecord(id="r2", seq=genome[350:]),
        FastaRecord(id="inner", seq=genome[180:280]),  # contained in r1
        FastaRecord(id="lone", seq=random_dna(rng, 300)),
    ]
    result = assemble(reads)
    return result, {r.id: r.seq for r in reads}


class TestPlacements:
    def test_every_member_placed(self, assembly):
        result, _ = assembly
        for contig in result.contigs:
            placed = {p[0] for p in contig.placements}
            assert placed == set(contig.members)

    def test_offsets_monotone_for_chain(self, assembly):
        result, _ = assembly
        contig = result.contigs[0]
        offsets = {p[0]: p[1] for p in contig.placements}
        assert offsets["r0"] < offsets["r1"] < offsets["r2"]

    def test_contained_read_inherits_container_offset(self, assembly):
        result, _ = assembly
        contig = result.contigs[0]
        offsets = {p[0]: p[1] for p in contig.placements}
        assert offsets["inner"] == offsets["r1"]

    def test_placement_validation(self):
        with pytest.raises(ValueError, match="cover exactly"):
            Contig(
                id="c", seq="ACGT", members=("a", "b"),
                placements=(("a", 0, False),),
            )


class TestAce:
    def test_header_counts(self, assembly):
        result, reads = assembly
        ace = format_ace(result, reads)
        n_reads = sum(len(c.members) for c in result.contigs)
        assert ace.startswith(f"AS {len(result.contigs)} {n_reads}")

    def test_record_structure(self, assembly):
        result, reads = assembly
        ace = format_ace(result, reads)
        lines = ace.splitlines()
        co = [l for l in lines if l.startswith("CO ")]
        af = [l for l in lines if l.startswith("AF ")]
        rd = [l for l in lines if l.startswith("RD ")]
        assert len(co) == len(result.contigs)
        assert len(af) == len(rd) == sum(len(c.members) for c in result.contigs)

    def test_af_offsets_one_based(self, assembly):
        result, reads = assembly
        ace = format_ace(result, reads)
        first_af = next(
            l for l in ace.splitlines() if l.startswith("AF r0")
        )
        assert first_af.split()[-1] == "1"

    def test_singlets_not_in_ace(self, assembly):
        result, reads = assembly
        assert "lone" not in format_ace(result, reads)

    def test_consensus_wrapped(self, assembly):
        result, reads = assembly
        ace = format_ace(result, reads)
        body_lines = [
            l for l in ace.splitlines()
            if l and not l[:2] in ("AS", "CO", "AF", "RD", "QA")
        ]
        assert all(len(l) <= 60 for l in body_lines)

    def test_write_ace(self, assembly, tmp_path):
        result, reads = assembly
        path = write_ace(result, reads, tmp_path / "out.cap.ace")
        assert path.read_text().startswith("AS ")


class TestInfo:
    def test_lists_contigs_and_singlets(self, assembly):
        result, _ = assembly
        info = format_info(result)
        assert "Contig1" in info
        assert "lone" in info
        assert "Singlets: 1" in info

    def test_reads_sorted_by_offset(self, assembly):
        result, _ = assembly
        info = format_info(result)
        r0 = info.index("r0 ")
        r2 = info.index("r2 ")
        assert r0 < r2
