"""Table-driven tests for the repro.lint rule catalog.

One minimal fixture workflow per rule: the clean workflow yields zero
findings, and each seeded defect yields exactly its rule id. Plus the
planner-preflight integration, the ``repro-lint`` CLI contract, and a
hypothesis property: linting any valid factory-built workflow yields
no ERROR findings.
"""

from __future__ import annotations

from dataclasses import replace

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.workflow_factory import (
    build_blast2cap3_adag,
    default_catalogs,
)
from repro.core.pipeline_workflow import build_pipeline_adag
from repro.dagman.dag import CycleError, Dag, DagJob, topological_sort
from repro.lint import (
    DeterminismOptions,
    Severity,
    lint,
    registered_rules,
    render_report,
)
from repro.lint.cli import main as lint_main
from repro.lint.feasibility import default_pools, pools_from_mapping
from repro.perfmodel.task_models import PaperTaskModel
from repro.sim.network import CAMPUS_SHARED_FS
from repro.wms.catalogs import (
    ReplicaCatalog,
    SiteCatalog,
    SiteEntry,
    TransformationCatalog,
    TransformationEntry,
    local_site,
    osg_site,
    sandhills_site,
)
from repro.wms.dax import ADag, AbstractJob, File
from repro.wms.planner import PlannerOptions, plan


def job(jid, inputs=(), outputs=(), transformation="t", **kw):
    j = AbstractJob(id=jid, transformation=transformation, **kw)
    for f in inputs:
        j.add_input(f if isinstance(f, File) else File(f))
    for f in outputs:
        j.add_output(f if isinstance(f, File) else File(f))
    return j


def adag_of(*jobs):
    adag = ADag(name="fixture")
    for j in jobs:
        adag.add_job(j)
    return adag


def full_catalogs(names=("split", "work", "merge"), installed=("sandhills", "local")):
    sites = SiteCatalog()
    sites.add(sandhills_site())
    sites.add(osg_site())
    sites.add(local_site())
    tc = TransformationCatalog()
    for name in names:
        tc.add(TransformationEntry(name=name, installed_sites=frozenset(installed)))
    rc = ReplicaCatalog()
    return sites, tc, rc


def fan_out(n=3):
    adag = ADag(name="fan")
    raw = File("raw.txt", size=1000)
    split = job("split", transformation="split", inputs=[raw], runtime=10)
    merge = job("merge", transformation="merge", runtime=5)
    for i in range(n):
        part = File(f"part_{i}.txt", size=100)
        split.add_output(part)
        out = File(f"out_{i}.txt", size=10)
        adag.add_job(
            job(f"work_{i}", transformation="work", inputs=[part],
                outputs=[out], runtime=100)
        )
        merge.add_input(out)
    merge.add_output(File("final.txt", size=40))
    adag.add_job(split)
    adag.add_job(merge)
    return adag


# ---------------------------------------------------------------------------
# fixture builders: each returns (adag, lint_kwargs) seeding ONE defect
# ---------------------------------------------------------------------------


def seed_dax001():
    a = job("a", inputs=["fb.dat"], outputs=["fa.dat"])
    b = job("b", inputs=["fa.dat"], outputs=["fb.dat"])
    return adag_of(a, b), {}


def seed_dax002():
    a = job("a", inputs=["ghost.txt"], outputs=["out.dat"])
    return adag_of(a), {"replicas": ReplicaCatalog()}


def seed_dax003():
    return adag_of(
        job("a", outputs=["x.dat"]), job("b", outputs=["x.dat"])
    ), {}


def seed_dax004():
    return adag_of(
        job("a", outputs=["x.dat"]), job("sink", inputs=["x.dat"])
    ), {}


def seed_dax005():
    return adag_of(
        job("a", outputs=[File("x.dat", size=100)]),
        job("b", inputs=[File("x.dat", size=999)], outputs=["y.dat"]),
    ), {}


def seed_dax006():
    return adag_of(job("bare")), {}


def seed_dax007():
    adag = adag_of(
        job("a", outputs=["x.dat"]),
        job("b", inputs=["x.dat"], outputs=["y.dat"]),
    )
    adag.add_dependency("a", "b")
    return adag, {}


def seed_dax008():
    return adag_of(job("j", inputs=["f.dat"], outputs=["f.dat", "g.dat"])), {}


def seed_cat001():
    tc = TransformationCatalog()
    return adag_of(
        job("a", transformation="frobnicate", inputs=["in.txt"],
            outputs=["out.txt"])
    ), {"transformations": tc}


def seed_cat002():
    adag = fan_out()
    sites, tc, _ = full_catalogs()
    return adag, {
        "sites": sites,
        "transformations": tc,
        "site": "osg",
        "options": PlannerOptions(setup_mode="never"),
    }


def seed_cat003():
    sites = SiteCatalog()
    sites.add(sandhills_site())
    rc = ReplicaCatalog()
    rc.add("data.bin", "gsiftp://gone/data.bin", site="decommissioned")
    return adag_of(job("a", outputs=["out.txt"])), {
        "sites": sites,
        "replicas": rc,
    }


def seed_cat004():
    sites = SiteCatalog()
    sites.add(sandhills_site())
    return adag_of(job("a", outputs=["out.txt"])), {
        "sites": sites,
        "site": "mars",
    }


def _planned(adag, site_name, sites, tc, rc, **opts):
    return plan(
        adag, site_name=site_name, sites=sites, transformations=tc,
        replicas=rc, options=PlannerOptions(lint="off", **opts),
    )


def seed_plan001():
    # A shared-FS site without the software stack: the planner decorates
    # compute jobs with per-job setup, which the linter calls out.
    adag = fan_out()
    sites, tc, rc = full_catalogs(installed=())
    shared_nosw = SiteEntry(
        name="shared-nosw", shared_filesystem=True,
        software_preinstalled=False, network=CAMPUS_SHARED_FS,
    )
    sites.add(shared_nosw)
    rc.add("raw.txt", "file:///raw.txt")
    planned = _planned(adag, "shared-nosw", sites, tc, rc)
    return adag, {
        "sites": sites, "transformations": tc, "replicas": rc,
        "site": "shared-nosw", "planned": planned,
    }


def seed_plan002():
    # timeout_s set so only the retry defect fires (not PLAN005 too).
    adag = fan_out()
    sites, tc, rc = full_catalogs()
    rc.add("raw.txt", "file:///raw.txt")
    planned = _planned(adag, "osg", sites, tc, rc, retries=0,
                       timeout_s=3600.0)
    return adag, {
        "sites": sites, "transformations": tc, "replicas": rc,
        "site": "osg", "planned": planned,
    }


def seed_plan003():
    adag = fan_out(6)
    sites, tc, rc = full_catalogs()
    rc.add("raw.txt", "file:///raw.txt")
    planned = _planned(adag, "sandhills", sites, tc, rc, cluster_size=6)
    return adag, {
        "sites": sites, "transformations": tc, "replicas": rc,
        "site": "sandhills", "planned": planned,
    }


def seed_plan004():
    adag = fan_out()
    sites, tc, rc = full_catalogs()
    rc.add("raw.txt", "file:///raw.txt")
    planned = _planned(adag, "sandhills", sites, tc, rc)
    planned.dag.jobs["merge"] = replace(
        planned.dag.jobs["merge"], priority=10
    )
    return adag, {
        "sites": sites, "transformations": tc, "replicas": rc,
        "site": "sandhills", "planned": planned,
    }


def seed_plan005():
    # Default retries (> 0) keep PLAN002 quiet; no timeout on a
    # preemptible site is the seeded defect.
    adag = fan_out()
    sites, tc, rc = full_catalogs()
    rc.add("raw.txt", "file:///raw.txt")
    planned = _planned(adag, "osg", sites, tc, rc)
    return adag, {
        "sites": sites, "transformations": tc, "replicas": rc,
        "site": "osg", "planned": planned,
    }


def seed_plan006():
    # Default retries (> 0) mean the plan expects failures; declaring
    # journal=False (run will keep no write-ahead journal) arms the
    # durability rule. Sandhills keeps the preemptible-site rules quiet.
    adag = fan_out()
    sites, tc, rc = full_catalogs()
    rc.add("raw.txt", "file:///raw.txt")
    planned = _planned(adag, "sandhills", sites, tc, rc)
    return adag, {
        "sites": sites, "transformations": tc, "replicas": rc,
        "site": "sandhills", "planned": planned, "journal": False,
    }


def seed_flow001():
    # a's input is unresolvable (DAX002's finding); b is *transitively*
    # starved through a, which is FLOW001's.
    a = job("a", inputs=["ghost.txt"], outputs=["x.dat"])
    b = job("b", inputs=["x.dat"], outputs=["y.dat"])
    return adag_of(a, b), {"replicas": ReplicaCatalog()}


def seed_flow002():
    # p runs fine and computes mid.dat, but its only consumer is starved
    # on an unrelated missing input: mid.dat is produced then discarded.
    rc = ReplicaCatalog()
    rc.add("raw.txt", "file:///raw.txt")
    p = job("p", inputs=["raw.txt"], outputs=["mid.dat"])
    c = job("c", inputs=["mid.dat", "ghost.txt"], outputs=["final.txt"])
    return adag_of(p, c), {"replicas": rc}


def seed_flow003():
    rc = ReplicaCatalog()
    rc.add("raw.txt", "file:///raw.txt")
    rc.add("x.dat", "file:///cache/x.dat")
    a = job("a", inputs=["raw.txt"], outputs=["x.dat"])
    b = job("b", inputs=["x.dat"], outputs=["y.dat"])
    return adag_of(a, b), {"replicas": rc}


def seed_flow004():
    a = job("a", outputs=["x.dat"])
    b = job("b", inputs=["x.dat"], outputs=["y.dat"])
    island = job("island", inputs=["seed2.txt"], outputs=["lost.dat"])
    return adag_of(a, b, island), {}


def seed_res001():
    # Planned with hard software requirements, then checked against a
    # doctored pool where no slot can ever advertise CAP3. Site and
    # transformations are deliberately omitted so CAT002 (which checks
    # the *guaranteed* machine, a weaker claim) stays out of scope.
    adag = fan_out()
    sites, tc, rc = full_catalogs()
    rc.add("raw.txt", "file:///raw.txt")
    planned = _planned(adag, "osg", sites, tc, rc, setup_mode="never")
    doctored = pools_from_mapping(
        {"osg": {"software": ["has_python", "has_biopython"]}},
        base={"osg": default_pools()["osg"]},
    )
    return adag, {"planned": planned, "pools": doctored}


def seed_res002():
    adag = fan_out(3)
    sites, tc, rc = full_catalogs()
    rc.add("raw.txt", "file:///raw.txt")
    planned = _planned(adag, "sandhills", sites, tc, rc)
    tiny = replace(default_pools()["sandhills"], slots=2)
    return adag, {
        "site": sandhills_site(), "planned": planned,
        "pools": {"sandhills": tiny},
    }


def seed_res003():
    # Long jobs on the preemptible pool with one retry: the chance of
    # losing both attempts to eviction is provably above threshold.
    # timeout_s is generous so RES004 stays quiet; retries >= 1 keeps
    # PLAN002 quiet.
    adag = ADag(name="fan")
    raw = File("raw.txt", size=1000)
    split = job("split", transformation="split", inputs=[raw], runtime=10)
    merge = job("merge", transformation="merge", runtime=5)
    for i in range(3):
        part = File(f"part_{i}.txt", size=100)
        split.add_output(part)
        out = File(f"out_{i}.txt", size=10)
        adag.add_job(
            job(f"work_{i}", transformation="work", inputs=[part],
                outputs=[out], runtime=5000)
        )
        merge.add_input(out)
    merge.add_output(File("final.txt", size=40))
    adag.add_job(split)
    adag.add_job(merge)
    sites, tc, rc = full_catalogs()
    rc.add("raw.txt", "file:///raw.txt")
    planned = _planned(adag, "osg", sites, tc, rc, retries=1,
                       timeout_s=36000.0)
    return adag, {
        "site": osg_site(), "planned": planned,
        "pools": default_pools(),
    }


def seed_res004():
    # timeout_s below the best-case runtime of the work jobs even on
    # the fastest modeled sandhills slot: every attempt is killed.
    adag = fan_out()
    sites, tc, rc = full_catalogs()
    rc.add("raw.txt", "file:///raw.txt")
    planned = _planned(adag, "sandhills", sites, tc, rc, timeout_s=10.0)
    return adag, {
        "site": sandhills_site(), "planned": planned,
        "pools": default_pools(),
    }


def seed_det001():
    # A fake runner whose fingerprint depends on the perturbation name:
    # every perturbed replay diverges from baseline.
    opts = DeterminismOptions(
        runner=lambda platform, perturbation, _opts: perturbation,
    )
    return fan_out(), {"determinism": opts}


#: Rules whose seed *inherently* co-fires another rule: transitive
#: starvation (FLOW001/FLOW002) always roots in a missing file, which
#: is DAX002's finding — both firing is the designed division of labor.
CO_FIRES = {
    "FLOW001": {"DAX002"},
    "FLOW002": {"DAX002"},
}


SEEDS = {
    "DAX001": seed_dax001,
    "DAX002": seed_dax002,
    "DAX003": seed_dax003,
    "DAX004": seed_dax004,
    "DAX005": seed_dax005,
    "DAX006": seed_dax006,
    "DAX007": seed_dax007,
    "DAX008": seed_dax008,
    "CAT001": seed_cat001,
    "CAT002": seed_cat002,
    "CAT003": seed_cat003,
    "CAT004": seed_cat004,
    "PLAN001": seed_plan001,
    "PLAN002": seed_plan002,
    "PLAN003": seed_plan003,
    "PLAN004": seed_plan004,
    "PLAN005": seed_plan005,
    "PLAN006": seed_plan006,
    "FLOW001": seed_flow001,
    "FLOW002": seed_flow002,
    "FLOW003": seed_flow003,
    "FLOW004": seed_flow004,
    "RES001": seed_res001,
    "RES002": seed_res002,
    "RES003": seed_res003,
    "RES004": seed_res004,
    "DET001": seed_det001,
}


class TestRuleTable:
    def test_every_registered_rule_has_a_seed(self):
        assert sorted(SEEDS) == [r.id for r in registered_rules()]
        assert len(SEEDS) >= 10

    @pytest.mark.parametrize("rule_id", sorted(SEEDS))
    def test_seeded_defect_fires_exactly_its_rule(self, rule_id):
        adag, kwargs = SEEDS[rule_id]()
        report = lint(adag, **kwargs)
        fired = {f.rule for f in report.findings}
        allowed = {rule_id} | CO_FIRES.get(rule_id, set())
        assert rule_id in fired, render_report(report)
        assert fired <= allowed, render_report(report)
        assert rule_id in report.checked_rules

    def test_clean_blast2cap3_yields_zero_findings(self):
        adag = build_blast2cap3_adag(10, model=PaperTaskModel())
        sites, tc, rc = default_catalogs()
        planned = plan(adag, site_name="sandhills", sites=sites,
                       transformations=tc, replicas=rc)
        report = lint(adag, sites=sites, transformations=tc, replicas=rc,
                      site="sandhills", planned=planned, journal=True)
        assert report.findings == []
        # the determinism audit is opt-in; every static pass ran
        # (journal=True satisfies PLAN006 rather than skipping it)
        assert report.skipped_rules == ["DET001"]
        assert report.ok

    def test_clean_pipeline_yields_zero_findings(self):
        assert lint(build_pipeline_adag(3)).findings == []

    def test_severities(self):
        by_id = {r.id: r.severity for r in registered_rules()}
        assert by_id["DAX001"] is Severity.ERROR
        assert by_id["DAX003"] is Severity.ERROR
        assert by_id["CAT002"] is Severity.ERROR
        assert by_id["DAX007"] is Severity.INFO
        assert by_id["PLAN002"] is Severity.WARNING

    def test_report_renders_and_serializes(self):
        import json

        adag, kwargs = seed_dax003()
        report = lint(adag, **kwargs)
        text = render_report(report)
        assert "DAX003" in text and "ERROR" in text
        data = json.loads(report.to_json())
        assert data["ok"] is False
        assert data["findings"][0]["rule"] == "DAX003"

    def test_rules_skip_without_context(self):
        report = lint(adag_of(job("a", outputs=["x"])))
        assert "CAT001" in report.skipped_rules
        assert "PLAN004" in report.skipped_rules
        assert "DAX003" in report.checked_rules


class TestValidateShim:
    def test_validate_is_deprecated_but_compatible(self):
        adag = adag_of(job("bare"))
        with pytest.warns(DeprecationWarning, match="repro.lint"):
            problems = adag.validate()
        assert any("uses no files" in p for p in problems)

    def test_validate_clean(self):
        with pytest.warns(DeprecationWarning):
            assert build_blast2cap3_adag(5).validate() == []


class TestCycleHelper:
    def test_topological_sort_raises_cycle_error(self):
        with pytest.raises(CycleError) as excinfo:
            topological_sort(["a", "b"], {"a": {"b"}, "b": {"a"}})
        assert excinfo.value.members == ("a", "b")

    def test_cycle_error_is_value_error(self):
        dag = Dag()
        dag.add_job(DagJob(name="a", transformation="t"))
        dag.add_job(DagJob(name="b", transformation="t"))
        dag.add_edge("a", "b")
        with pytest.raises(ValueError, match="would create a cycle"):
            dag.add_edge("b", "a")
        # rollback: the DAG is still orderable and the edge is gone
        assert dag.topological_order() == ["a", "b"]
        assert dag.children("b") == set()


class TestPlannerPreflight:
    def test_plan_attaches_clean_report(self):
        adag = fan_out()
        sites, tc, rc = full_catalogs()
        rc.add("raw.txt", "file:///raw.txt")
        planned = plan(adag, site_name="sandhills", sites=sites,
                       transformations=tc, replicas=rc)
        assert planned.lint_report is not None
        assert planned.lint_report.findings == []

    def test_lint_off_skips_preflight(self):
        adag = fan_out()
        sites, tc, rc = full_catalogs()
        rc.add("raw.txt", "file:///raw.txt")
        planned = plan(adag, site_name="sandhills", sites=sites,
                       transformations=tc, replicas=rc,
                       options=PlannerOptions(lint="off"))
        assert planned.lint_report is None

    def test_warn_mode_surfaces_warnings_without_raising(self):
        adag = fan_out()
        sites, tc, rc = full_catalogs()
        rc.add("raw.txt", "file:///raw.txt")
        planned = plan(adag, site_name="osg", sites=sites,
                       transformations=tc, replicas=rc,
                       options=PlannerOptions(retries=0, lint="warn"))
        assert planned.lint_report.by_rule("PLAN002")

    def test_invalid_lint_mode_rejected(self):
        with pytest.raises(ValueError, match="lint mode"):
            PlannerOptions(lint="loud")


WRITE_WRITE_DAX = """\
<adag name="conflicted" jobCount="2">
  <job id="a" name="t" runtime="1.0">
    <uses name="x.dat" link="output" size="10" />
  </job>
  <job id="b" name="t" runtime="1.0">
    <uses name="x.dat" link="output" size="10" />
  </job>
</adag>
"""


class TestCli:
    def test_write_write_conflict_exits_nonzero(self, tmp_path, capsys):
        dax = tmp_path / "conflicted.dax"
        dax.write_text(WRITE_WRITE_DAX)
        rc = lint_main(["--dax", str(dax), "--site", "sandhills"])
        assert rc == 1
        assert "DAX003" in capsys.readouterr().out

    def test_bundled_workflow_is_clean_for_every_site(self, capsys):
        for site in ("sandhills", "osg", "cloud", "local"):
            rc = lint_main(["-n", "12", "--site", site])
            assert rc == 0, capsys.readouterr().out
        assert "clean" in capsys.readouterr().out

    def test_paper_trap_detected(self, capsys):
        rc = lint_main(
            ["-n", "12", "--site", "osg", "--setup-mode", "never"]
        )
        assert rc == 1
        assert "CAT002" in capsys.readouterr().out

    def test_json_output(self, capsys):
        import json

        rc = lint_main(["-n", "5", "--site", "sandhills", "--json"])
        assert rc == 0
        data = json.loads(capsys.readouterr().out)
        assert data["ok"] is True

    def test_missing_dax_file(self, capsys):
        rc = lint_main(["--dax", "/nonexistent/w.dax"])
        assert rc == 2


class TestFactoryWorkflowsAlwaysLintClean:
    @given(
        n=st.integers(min_value=1, max_value=25),
        site=st.sampled_from(["sandhills", "osg", "cloud"]),
        retries=st.integers(min_value=1, max_value=5),
        cluster_size=st.integers(min_value=1, max_value=3),
    )
    @settings(max_examples=25, deadline=None)
    def test_no_errors_on_valid_generated_workflows(
        self, n, site, retries, cluster_size
    ):
        adag = build_blast2cap3_adag(n, model=PaperTaskModel())
        sites, tc, rc = default_catalogs()
        planned = plan(
            adag, site_name=site, sites=sites, transformations=tc,
            replicas=rc,
            options=PlannerOptions(retries=retries,
                                   cluster_size=cluster_size,
                                   lint="off"),
        )
        report = lint(adag, sites=sites, transformations=tc, replicas=rc,
                      site=site, planned=planned)
        assert not report.errors(), render_report(report)

    @given(n_lanes=st.integers(min_value=1, max_value=8))
    @settings(max_examples=15, deadline=None)
    def test_pipeline_adag_dax_pass_clean(self, n_lanes):
        report = lint(build_pipeline_adag(n_lanes))
        assert not report.errors()
