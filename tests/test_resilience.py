"""Tests for the resilience layer: fault injection, retry policies,
timeouts, the blacklist circuit breaker, and run_with_recovery."""

import math
import random
import time

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.workflow_factory import simulate_paper_run_with_recovery
from repro.dagman.dag import Dag, DagJob
from repro.dagman.events import JobStatus
from repro.dagman.scheduler import DagmanScheduler, NodeState
from repro.execution.local import LocalEnvironment
from repro.observe.bus import EventBus, EventRecorder
from repro.observe.events import EventKind
from repro.resilience import (
    AttemptFault,
    BadNode,
    Blacklist,
    BlacklistPolicy,
    ChaosPayload,
    Eviction,
    ExponentialBackoff,
    FaultInjected,
    FaultInjector,
    FaultPlan,
    FixedDelayRetry,
    Hang,
    ImmediateRetry,
    RetryPolicy,
    SiteOutage,
    Slowdown,
    StartFailure,
    resolve_exec,
    run_with_recovery,
)
from repro.sim.cluster import CampusCluster, CampusClusterConfig
from repro.sim.engine import Simulator
from repro.sim.grid import GridConfig, OpportunisticGrid
from repro.sim.rng import RngStreams
from repro.wms.planner import PlannerOptions
from repro.wms.statistics import summarize


def job(name, runtime=10.0, retries=0, timeout_s=None, payload=None):
    return DagJob(
        name=name,
        transformation="t",
        runtime=runtime,
        retries=retries,
        timeout_s=timeout_s,
        payload=payload,
    )


def chain(names, **kwargs):
    dag = Dag(name="chain")
    prev = None
    for name in names:
        dag.add_job(job(name, **kwargs))
        if prev is not None:
            dag.add_edge(prev, name)
        prev = name
    return dag


def make_cluster(dag_retry_policy=None, *, injector=None, blacklist=None,
                 bus=None, nodes=4, seed=0):
    sim = Simulator()
    cluster = CampusCluster(
        sim,
        CampusClusterConfig(name="sandhills", nodes=nodes, queue_wait_mean_s=5.0),
        streams=RngStreams(seed=seed),
        bus=bus,
        injector=injector,
        blacklist=blacklist,
    )
    return cluster


# -- resolve_exec: the payload/eviction/timeout race --------------------


class TestResolveExec:
    def test_plain_success(self):
        assert resolve_exec(10.0) == (10.0, JobStatus.SUCCEEDED, None)

    def test_eviction_preempts_payload(self):
        delay, status, error = resolve_exec(100.0, evict_after=30.0)
        assert delay == 30.0
        assert status is JobStatus.EVICTED
        assert "preempted" in error

    def test_timeout_kills_payload(self):
        delay, status, error = resolve_exec(100.0, timeout_s=60.0)
        assert delay == 60.0
        assert status is JobStatus.TIMEOUT
        assert "timeout of 60s" in error

    def test_payload_finishing_first_wins(self):
        delay, status, _ = resolve_exec(10.0, evict_after=30.0, timeout_s=60.0)
        assert (delay, status) == (10.0, JobStatus.SUCCEEDED)

    def test_tie_goes_to_timeout(self):
        _, status, _ = resolve_exec(100.0, evict_after=50.0, timeout_s=50.0)
        assert status is JobStatus.TIMEOUT

    def test_hang_with_timeout_is_killed(self):
        delay, status, _ = resolve_exec(math.inf, timeout_s=120.0)
        assert (delay, status) == (120.0, JobStatus.TIMEOUT)

    def test_hang_with_eviction_is_preempted(self):
        delay, status, _ = resolve_exec(math.inf, evict_after=500.0)
        assert (delay, status) == (500.0, JobStatus.EVICTED)

    def test_hang_alone_never_completes(self):
        delay, status, error = resolve_exec(math.inf)
        assert math.isinf(delay)
        assert status is JobStatus.FAILED
        assert "never completes" in error


# -- fault plans and the injector ---------------------------------------


class TestFaultInjector:
    def _decisions(self, plan, seed=7, n=20, site="osg", machine="m0"):
        injector = FaultInjector(plan, rng=random.Random(seed))
        return [
            injector.decide(
                job(f"j{i}"), site=site, machine=machine, attempt=1, now=0.0
            )
            for i in range(n)
        ]

    def test_same_seed_same_decisions(self):
        plan = FaultPlan((
            StartFailure(0.3),
            Slowdown(0.3, 2.0),
            Hang(0.1),
            Eviction(1.0 / 100.0),
        ))
        assert self._decisions(plan, seed=7) == self._decisions(plan, seed=7)

    def test_site_scoping(self):
        plan = FaultPlan((StartFailure(1.0, sites=("osg",)),))
        on_osg = self._decisions(plan, site="osg", n=3)
        on_campus = self._decisions(plan, site="sandhills", n=3)
        assert all(d.dead_on_arrival for d in on_osg)
        assert all(d.dead_on_arrival is None for d in on_campus)

    def test_scoped_fault_still_draws_rng(self):
        # A spec scoped away from this site must still consume its draw,
        # so a later spec sees identical randomness either way.
        tail = FaultPlan((StartFailure(0.5, sites=("osg",)), Hang(0.5)))
        scoped = self._decisions(tail, site="sandhills", n=30)
        unscoped = self._decisions(FaultPlan((StartFailure(0.5), Hang(0.5))),
                                   site="osg", n=30)
        assert [d.hang for d in scoped] == [d.hang for d in unscoped]

    def test_site_outage_window(self):
        injector = FaultInjector(
            FaultPlan((SiteOutage("osg", 100.0, 200.0),))
        )
        before = injector.decide(job("a"), site="osg", machine="m",
                                 attempt=1, now=50.0)
        during = injector.decide(job("b"), site="osg", machine="m",
                                 attempt=1, now=150.0)
        after = injector.decide(job("c"), site="osg", machine="m",
                                attempt=1, now=200.0)
        assert before.dead_on_arrival is None
        assert "outage" in during.dead_on_arrival
        assert after.dead_on_arrival is None

    def test_bad_node_is_deterministic(self):
        injector = FaultInjector(FaultPlan((BadNode(("m-bad",)),)))
        bad = injector.decide(job("a"), site="s", machine="m-bad",
                              attempt=1, now=0.0)
        good = injector.decide(job("b"), site="s", machine="m-ok",
                               attempt=1, now=0.0)
        assert "bad node" in bad.dead_on_arrival
        assert good.dead_on_arrival is None

    def test_attempt_fault_counts_occurrences_across_rounds(self):
        # The counter is per-injector, not per-scheduler-attempt: three
        # decide() calls for the same job are occurrences 1, 2, 3 even
        # if each came from a different DAGMan round.
        injector = FaultInjector(
            FaultPlan((AttemptFault("a", occurrences=(1, 3), mode="fail"),))
        )
        results = [
            injector.decide(job("a"), site="s", machine="m",
                            attempt=1, now=0.0).dead_on_arrival
            for _ in range(3)
        ]
        assert [r is not None for r in results] == [True, False, True]

    def test_fired_events_on_bus(self):
        bus = EventBus()
        recorder = EventRecorder(bus)
        injector = FaultInjector(
            FaultPlan((BadNode(("m0",)), Hang(1.0))), bus=bus
        )
        injector.decide(job("a"), site="s", machine="m0", attempt=1, now=3.0)
        faults = [e.detail["fault"] for e in recorder.of_kind(EventKind.FAULT)]
        assert faults == ["bad_node", "hang"]
        assert injector.fired == 2

    def test_from_failure_model_bridges_the_osg_regime(self):
        model = GridConfig().failures
        plan = FaultPlan.from_failure_model(model)
        kinds = tuple(type(f) for f in plan.faults)
        assert kinds == (StartFailure, Eviction)
        assert plan.faults[0].prob == model.start_failure_prob


class TestChaosPayload:
    def test_dead_on_arrival_raises(self):
        wrapped = ChaosPayload(lambda: 42, dead_on_arrival="boom")
        with pytest.raises(FaultInjected, match="boom"):
            wrapped()

    def test_hang_sleeps_then_raises(self):
        naps = []
        wrapped = ChaosPayload(lambda: 42, hang_s=3.0, sleeper=naps.append)
        with pytest.raises(FaultInjected, match="hung"):
            wrapped()
        assert naps == [3.0]

    def test_slowdown_delays_then_runs(self):
        naps = []
        wrapped = ChaosPayload(lambda: 42, delay_s=1.5, sleeper=naps.append)
        assert wrapped() == 42
        assert naps == [1.5]

    def test_wrap_local_passthrough_without_faults(self):
        payload = lambda: 1  # noqa: E731
        injector = FaultInjector(FaultPlan())
        wrapped = injector.wrap_local(
            job("a", payload=payload), attempt=1, now=0.0
        )
        assert wrapped is payload


# -- retry policies -----------------------------------------------------


class TestRetryPolicies:
    def test_immediate_is_zero_delay(self):
        assert ImmediateRetry().delay_s(1) == 0.0
        assert ImmediateRetry().charge_evictions

    def test_fixed_delay(self):
        policy = FixedDelayRetry(45.0)
        assert [policy.delay_s(a) for a in (1, 2, 3)] == [45.0] * 3

    def test_backoff_grows_and_caps(self):
        policy = ExponentialBackoff(
            base_s=10.0, factor=2.0, max_delay_s=35.0, jitter=0.0
        )
        assert [policy.delay_s(a) for a in (1, 2, 3, 4)] == [
            10.0, 20.0, 35.0, 35.0
        ]

    def test_backoff_jitter_is_bounded_and_seeded(self):
        policy = ExponentialBackoff(base_s=100.0, jitter=0.2, seed=5)
        delays = [policy.delay_s(1) for _ in range(50)]
        assert all(80.0 <= d <= 120.0 for d in delays)
        again = ExponentialBackoff(base_s=100.0, jitter=0.2, seed=5)
        assert delays == [again.delay_s(1) for _ in range(50)]

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            FixedDelayRetry(-1.0)
        with pytest.raises(ValueError):
            ExponentialBackoff(factor=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(budget=-1)


class TestSchedulerRetryIntegration:
    def test_free_eviction_requeues_without_consuming_retry(self):
        # The job is evicted on its first two submissions but has
        # retries=0: only charge_evictions=False lets it finish.
        injector = FaultInjector(
            FaultPlan((AttemptFault("a", occurrences=(1, 2), mode="evict"),))
        )
        env = make_cluster(injector=injector)
        result = DagmanScheduler(
            chain(["a"]), env,
            retry_policy=ImmediateRetry(charge_evictions=False),
        ).run()
        assert result.success
        assert result.trace.retry_count == 2

    def test_charged_eviction_fails_without_retries(self):
        injector = FaultInjector(
            FaultPlan((AttemptFault("a", occurrences=(1, 2), mode="evict"),))
        )
        env = make_cluster(injector=injector)
        result = DagmanScheduler(
            chain(["a"]), env, retry_policy=ImmediateRetry()
        ).run()
        assert not result.success
        assert result.failed_jobs == ["a"]

    def test_budget_caps_free_requeues(self):
        # Evicted forever: the budget is the only thing that stops it.
        injector = FaultInjector(
            FaultPlan((AttemptFault("a", occurrences=tuple(range(1, 50)),
                                    mode="evict"),))
        )
        env = make_cluster(injector=injector)
        result = DagmanScheduler(
            chain(["a"]), env,
            retry_policy=ImmediateRetry(charge_evictions=False, budget=3),
        ).run()
        assert not result.success
        assert result.trace.retry_count == 3

    def test_delayed_retry_holds_then_releases(self):
        bus = EventBus()
        recorder = EventRecorder(bus)
        injector = FaultInjector(
            FaultPlan((AttemptFault("a", occurrences=(1,), mode="fail"),))
        )
        env = make_cluster(injector=injector, bus=bus)
        dag = chain(["a"], retries=1)
        result = DagmanScheduler(
            dag, env, bus=bus, retry_policy=FixedDelayRetry(600.0)
        ).run()
        assert result.success
        held = recorder.of_kind(EventKind.HELD)
        assert len(held) == 1
        assert held[0].detail["delay_s"] == 600.0
        # The second attempt cannot have started before the hold lifted.
        second = [a for a in result.trace if a.attempt == 2]
        assert second[0].submit_time >= 600.0


# -- timeouts -----------------------------------------------------------


class TestSimulatedTimeouts:
    def test_hung_attempt_killed_then_retried(self):
        bus = EventBus()
        recorder = EventRecorder(bus)
        injector = FaultInjector(
            FaultPlan((AttemptFault("a", occurrences=(1,), mode="hang"),))
        )
        env = make_cluster(injector=injector, bus=bus)
        result = DagmanScheduler(
            chain(["a"], retries=1, timeout_s=300.0), env, bus=bus
        ).run()
        assert result.success
        assert env.timeout_count == 1
        timeouts = recorder.of_kind(EventKind.TIMEOUT)
        assert len(timeouts) == 1
        assert "timeout of 300s" in timeouts[0].detail["error"]
        first = [a for a in result.trace if a.attempt == 1][0]
        assert first.status is JobStatus.TIMEOUT
        assert first.exec_end - first.exec_start == 300.0

    def test_hang_without_timeout_wedges_the_run(self):
        # Motivation for DagJob.timeout_s: the simulator drains but the
        # node never completes — DAGMan reports it still SUBMITTED.
        injector = FaultInjector(FaultPlan((Hang(1.0),)))
        env = make_cluster(injector=injector)
        scheduler = DagmanScheduler(chain(["a"]), env)
        scheduler.start()
        env.run_until_complete()
        result = scheduler.finish()
        assert not result.success
        assert result.states["a"] is NodeState.SUBMITTED

    def test_grid_timeout_counted(self):
        sim = Simulator()
        bus = EventBus()
        recorder = EventRecorder(bus)
        injector = FaultInjector(
            FaultPlan((AttemptFault("a", occurrences=(1,), mode="hang"),))
        )
        grid = OpportunisticGrid(
            sim, GridConfig(), streams=RngStreams(seed=2), bus=bus,
            injector=injector,
        )
        result = DagmanScheduler(
            chain(["a", "b"], retries=2, timeout_s=900.0), grid, bus=bus
        ).run()
        assert result.success
        assert grid.timeout_count == 1
        assert len(recorder.of_kind(EventKind.TIMEOUT)) == 1

    def test_timeout_round_trips_through_dag_file(self, tmp_path):
        dag = chain(["a"], timeout_s=123.5)
        path = tmp_path / "wf.dag"
        dag.write_dagfile(path)
        parsed = Dag.parse_dagfile(path)
        assert parsed.jobs["a"].timeout_s == 123.5


def _quick():
    return "ok"


def _slow():
    time.sleep(5.0)
    return "late"


class TestLocalResilience:
    def test_hung_payload_killed_by_watchdog(self):
        dag = Dag(name="local")
        dag.add_job(job("stuck", payload=_slow, timeout_s=0.3))
        started = time.monotonic()
        with LocalEnvironment(max_workers=1) as env:
            result = DagmanScheduler(dag, env).run()
        elapsed = time.monotonic() - started
        assert elapsed < 4.0  # did not wait out the 5s sleep
        assert not result.success
        attempt = list(result.trace)[0]
        assert attempt.status is JobStatus.TIMEOUT
        assert "timeout of 0.3s" in attempt.error
        assert env.timeout_count == 1

    def test_timeout_event_emitted_on_bus(self):
        bus = EventBus()
        recorder = EventRecorder(bus)
        dag = Dag(name="local")
        dag.add_job(job("stuck", payload=_slow, timeout_s=0.2))
        with LocalEnvironment(max_workers=1, bus=bus) as env:
            DagmanScheduler(dag, env, bus=bus).run()
        kinds = [e.kind for e in recorder.events]
        assert EventKind.TIMEOUT in kinds

    def test_injected_start_failure_fails_real_payload(self):
        injector = FaultInjector(FaultPlan((StartFailure(1.0),)))
        dag = Dag(name="local")
        dag.add_job(job("a", payload=_quick))
        with LocalEnvironment(max_workers=1, injector=injector) as env:
            result = DagmanScheduler(dag, env).run()
        assert not result.success
        attempt = list(result.trace)[0]
        assert "injected start failure" in attempt.error

    def test_submit_after_shutdown_raises(self):
        env = LocalEnvironment(max_workers=1)
        env.shutdown()
        with pytest.raises(RuntimeError, match="shut down"):
            env.submit(job("a", payload=_quick), lambda record: None)

    def test_exit_drains_in_flight_completions(self):
        records = []
        with LocalEnvironment(max_workers=1) as env:
            env.submit(job("a", payload=_quick), records.append)
            # No explicit run_until_complete(): __exit__ must drain.
        assert len(records) == 1
        assert records[0].status is JobStatus.SUCCEEDED

    def test_delayed_retry_on_wall_clock(self):
        injector = FaultInjector(
            FaultPlan((AttemptFault("a", occurrences=(1,), mode="fail"),))
        )
        dag = Dag(name="local")
        dag.add_job(job("a", payload=_quick, retries=1))
        with LocalEnvironment(max_workers=1, injector=injector) as env:
            result = DagmanScheduler(
                dag, env, retry_policy=FixedDelayRetry(0.2)
            ).run()
        assert result.success
        assert result.trace.retry_count == 1


# -- the blacklist circuit breaker --------------------------------------


class TestBlacklist:
    def test_trips_after_threshold(self):
        bl = Blacklist(BlacklistPolicy(threshold=3))
        for i in range(2):
            assert not bl.record_start_failure("m0", "s", now=float(i))
        assert bl.record_start_failure("m0", "s", now=2.0)
        assert bl.is_blocked("m0", "s", now=3.0)
        assert not bl.is_blocked("m1", "s", now=3.0)
        assert bl.trips == 1

    def test_success_resets_streak(self):
        bl = Blacklist(BlacklistPolicy(threshold=2))
        bl.record_start_failure("m0", "s", now=0.0)
        bl.record_success("m0", "s")
        assert not bl.record_start_failure("m0", "s", now=1.0)
        assert not bl.is_blocked("m0", "s", now=1.0)

    def test_cooldown_half_opens(self):
        bl = Blacklist(BlacklistPolicy(threshold=1, cooldown_s=100.0))
        bl.record_start_failure("m0", "s", now=0.0)
        assert bl.is_blocked("m0", "s", now=99.0)
        assert bl.next_expiry(now=0.0) == 100.0
        assert not bl.is_blocked("m0", "s", now=100.0)
        # Half-open: the streak restarted, one more failure re-trips.
        assert bl.record_start_failure("m0", "s", now=101.0)

    def test_site_threshold_blocks_whole_site(self):
        bl = Blacklist(BlacklistPolicy(threshold=10, site_threshold=3))
        for i, machine in enumerate(("m0", "m1", "m2")):
            bl.record_start_failure(machine, "osg", now=float(i))
        assert bl.blocked_sites(now=3.0) == ["osg"]
        # Any machine at the site is now blocked, even an unseen one.
        assert bl.is_blocked("m99", "osg", now=3.0)

    def test_blacklist_event_on_bus(self):
        bus = EventBus()
        recorder = EventRecorder(bus)
        bl = Blacklist(BlacklistPolicy(threshold=1, cooldown_s=60.0), bus=bus)
        bl.record_start_failure("m0", "s", now=5.0)
        events = recorder.of_kind(EventKind.BLACKLIST)
        assert len(events) == 1
        assert events[0].detail == {
            "scope": "machine", "name": "m0", "streak": 1, "until": 65.0
        }

    def test_cluster_routes_around_bad_node(self):
        # One misconfigured node fails everything it receives; after the
        # breaker trips, jobs stop landing there and the DAG completes.
        bus = EventBus()
        recorder = EventRecorder(bus)
        injector = FaultInjector(
            FaultPlan((BadNode(("sandhills-0001",)),)), bus=bus
        )
        blacklist = Blacklist(BlacklistPolicy(threshold=2), bus=bus)
        env = make_cluster(injector=injector, blacklist=blacklist, bus=bus)
        dag = Dag(name="wide")
        for i in range(12):
            dag.add_job(job(f"j{i}", retries=3))
        result = DagmanScheduler(dag, env, bus=bus).run()
        assert result.success
        assert blacklist.trips == 1
        assert recorder.of_kind(EventKind.BLACKLIST)[0].machine == (
            "sandhills-0001"
        )
        # Three jobs were matched onto the bad node before the breaker
        # tripped (round-robin over 4 nodes, 12 initial dispatches);
        # after the trip no retry lands there again.
        assert env.start_failure_count == 3


# -- run_with_recovery --------------------------------------------------


class TestRunWithRecovery:
    def test_single_round_success_writes_no_rescue(self, tmp_path):
        env = make_cluster()
        outcome = run_with_recovery(
            chain(["a", "b"]), env, max_rounds=3, rescue_dir=tmp_path
        )
        assert outcome.success
        assert len(outcome.rounds) == 1
        assert outcome.rescue_paths == []

    def test_failed_round_rescues_and_resubmits(self, tmp_path):
        bus = EventBus()
        recorder = EventRecorder(bus)
        # 'b' fails its first (and only, retries=0) attempt in round 1;
        # round 2 runs it clean from the rescue DAG.
        injector = FaultInjector(
            FaultPlan((AttemptFault("b", occurrences=(1,), mode="fail"),))
        )
        env = make_cluster(injector=injector, bus=bus)
        outcome = run_with_recovery(
            chain(["a", "b", "c"]), env,
            max_rounds=3, rescue_dir=tmp_path, bus=bus,
        )
        assert outcome.success
        assert len(outcome.rounds) == 2
        rescue = Dag.parse_dagfile(outcome.rescue_paths[0])
        assert rescue.done == {"a"}
        rescue_events = recorder.of_kind(EventKind.RESCUE)
        assert len(rescue_events) == 1
        assert rescue_events[0].detail["failed"] == ["b"]
        assert rescue_events[0].detail["resubmitting"] is True
        # 'a' ran once (its DONE mark carried forward), 'b' ran twice.
        names = [a.job_name for a in outcome.trace]
        assert names.count("a") == 1
        assert names.count("b") == 2

    def test_rounds_exhausted_reports_unrunnable_set(self, tmp_path):
        injector = FaultInjector(
            FaultPlan((AttemptFault("a", occurrences=tuple(range(1, 20)),
                                    mode="fail"),))
        )
        env = make_cluster(injector=injector)
        outcome = run_with_recovery(
            chain(["a", "b", "c"]), env, max_rounds=2, rescue_dir=tmp_path
        )
        assert not outcome.success
        assert len(outcome.rounds) == 2
        assert outcome.failed_jobs == ["a"]
        assert outcome.unrunnable_jobs == ["b", "c"]
        assert len(outcome.rescue_paths) == 2

    def test_environment_factory_gets_round_numbers(self):
        rounds_seen = []
        # One injector across rounds: its occurrence counter must span
        # the whole recovery sequence even when environments are fresh.
        injector = FaultInjector(
            FaultPlan((AttemptFault("a", occurrences=(1,), mode="fail"),))
        )

        def factory(round_no):
            rounds_seen.append(round_no)
            return make_cluster(injector=injector)

        outcome = run_with_recovery(chain(["a"]), factory, max_rounds=3)
        assert outcome.success
        assert rounds_seen == [1, 2]

    def test_osg_regime_with_outage_recovers_within_three_rounds(self):
        # The acceptance scenario: the paper's calibrated OSG failure
        # regime (4% DOA + preemption) plus an injected outage of the
        # pool's fastest site and scripted hangs, survived by timeouts,
        # the blacklist, free-eviction retries and the rescue loop.
        bus = EventBus()
        recorder = EventRecorder(bus)
        plan = FaultPlan((
            SiteOutage("ucsd-t2", 0.0, 5000.0),
            # Several scripted hangs: the eviction hazard usually wins
            # the race against the 6h timeout, so a single hang might
            # never reach the watchdog.
            AttemptFault("run_cap3_1", occurrences=tuple(range(1, 7)),
                         mode="hang"),
        ))
        # At n=50 the longest cap3 partition runs ~13.4k virtual seconds,
        # so a 6h timeout only ever kills genuinely hung attempts.
        outcome, planned = simulate_paper_run_with_recovery(
            50, "osg", seed=1,
            fault_plan=plan,
            blacklist_policy=BlacklistPolicy(
                threshold=2, site_threshold=6, cooldown_s=6000.0
            ),
            retry_policy=ImmediateRetry(charge_evictions=False),
            planner_options=PlannerOptions(retries=2, timeout_s=6 * 3600.0),
            bus=bus, max_rounds=3,
        )
        assert outcome.success
        assert len(outcome.rounds) <= 3
        kinds = {e.kind for e in recorder.events}
        assert EventKind.FAULT in kinds
        assert EventKind.TIMEOUT in kinds
        assert EventKind.BLACKLIST in kinds
        # Statistics accounting stays consistent across rescue rounds:
        # every planned job has exactly one *successful* attempt in the
        # merged trace, and nothing was left unattempted.
        stats = summarize(
            outcome.trace, expected_jobs=len(planned.dag.jobs)
        )
        assert stats.planned_jobs == len(planned.dag.jobs)
        assert stats.unattempted_jobs == 0
        assert stats.succeeded_jobs == len(planned.dag.jobs)


# -- cross-backend: same recovery event chain ---------------------------


#: Kinds whose (kind, job) sequence must agree between the wall-clock
#: local backend and the virtual-clock simulators. Platform-specific
#: kinds (match, setup, exec, samples) and state bookkeeping are
#: excluded; timestamps differ by construction.
RECOVERY_KINDS = (
    EventKind.SUBMIT,
    EventKind.FAULT,
    EventKind.RETRY,
    EventKind.TIMEOUT,
    EventKind.FINISH,
    EventKind.EVICT,
    EventKind.RESCUE,
)


def _recovery_sequence(make_env):
    bus = EventBus()
    recorder = EventRecorder(bus)
    dag = Dag(name="xb")
    for name in ("a", "b"):
        dag.add_job(job(name, runtime=1.0, payload=_quick))
    dag.add_edge("a", "b")
    injector = FaultInjector(
        FaultPlan((AttemptFault("a", occurrences=(1,), mode="fail"),)),
        bus=bus,
    )
    env = make_env(bus, injector)
    try:
        outcome = run_with_recovery(dag, env, max_rounds=2, bus=bus)
    finally:
        shutdown = getattr(env, "shutdown", None)
        if shutdown is not None:
            env.run_until_complete()
            shutdown()
    assert outcome.success
    return recorder.sequence(kinds=RECOVERY_KINDS)


class TestCrossBackend:
    def test_local_and_simulated_recovery_chains_match(self):
        local = _recovery_sequence(
            lambda bus, injector: LocalEnvironment(
                max_workers=1, bus=bus, injector=injector
            )
        )
        simulated = _recovery_sequence(
            lambda bus, injector: make_cluster(bus=bus, injector=injector)
        )
        assert local == simulated
        # Round 1: a is submitted, faulted, fails; the rescue fires;
        # round 2 reruns a then b.
        assert local == [
            ("job.submit", "a"),
            ("fault.injected", "a"),
            ("job.finish", "a"),
            ("rescue.round", None),
            ("job.submit", "a"),
            ("job.finish", "a"),
            ("job.submit", "b"),
            ("job.finish", "b"),
        ]


# -- property: recovery either completes or names the unrunnable set ----


@st.composite
def fault_scripts(draw):
    """A scripted fault plan over a 5-job diamond-plus-tail DAG."""
    faults = []
    for name in ("a", "b", "c", "d", "e"):
        occurrences = draw(
            st.sets(st.integers(min_value=1, max_value=4), max_size=3)
        )
        if occurrences:
            mode = draw(st.sampled_from(["fail", "evict", "hang"]))
            faults.append(
                AttemptFault(name, tuple(sorted(occurrences)), mode=mode)
            )
    return FaultPlan(tuple(faults))


def _descendants(dag, roots):
    out = set()
    frontier = list(roots)
    while frontier:
        node = frontier.pop()
        for child in dag.children(node):
            if child not in out:
                out.add(child)
                frontier.append(child)
    return out


class TestRecoveryProperty:
    @settings(
        max_examples=30, deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(plan=fault_scripts(), retries=st.integers(0, 1),
           max_rounds=st.integers(1, 3))
    def test_completes_or_reports_exact_unrunnable_set(
        self, plan, retries, max_rounds
    ):
        dag = Dag(name="prop")
        for name in ("a", "b", "c", "d", "e"):
            dag.add_job(job(name, retries=retries, timeout_s=600.0))
        dag.add_edge("a", "b")
        dag.add_edge("a", "c")
        dag.add_edge("b", "d")
        dag.add_edge("c", "d")
        dag.add_edge("d", "e")
        env = make_cluster(
            injector=FaultInjector(plan, rng=random.Random(0))
        )
        outcome = run_with_recovery(
            dag, env, max_rounds=max_rounds,
            retry_policy=ImmediateRetry(charge_evictions=False, budget=6),
        )
        states = outcome.final.states
        if outcome.success:
            assert all(s is NodeState.DONE for s in states.values())
        else:
            failed = set(outcome.failed_jobs)
            unrunnable = set(outcome.unrunnable_jobs)
            done = {n for n, s in states.items() if s is NodeState.DONE}
            assert failed
            # The three sets partition the DAG...
            assert failed | unrunnable | done == set(dag.jobs)
            assert not (failed & unrunnable or failed & done
                        or unrunnable & done)
            # ...and the unrunnable set is exactly the jobs downstream
            # of a failure (minus any that failed on their own).
            assert unrunnable == _descendants(dag, failed) - failed
