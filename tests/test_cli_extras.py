"""Tests for the newer CLI features: cloud site, clustering/cleanup
flags, live monitord hook, and --validate."""

import json

import pytest

from repro.bio.fasta import write_fasta
from repro.blast.tabular import write_tabular
from repro.core.cli import main as blast2cap3_main
from repro.dagman.scheduler import DagmanScheduler
from repro.datagen.workload import generate_blast2cap3_workload
from repro.wms.cli import main_plan, main_run, main_statistics
from repro.wms.monitor import append_attempt, read_trace


class TestCloudCli:
    def test_plan_and_run_on_cloud(self, tmp_path, capsys):
        d = tmp_path / "cloud-run"
        assert main_plan(["--submit-dir", str(d), "-n", "10",
                          "--site", "cloud"]) == 0
        assert main_run(["--submit-dir", str(d), "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "cloud cost: $" in out
        assert main_statistics(["--submit-dir", str(d)]) == 0


class TestPlannerFlags:
    def test_cluster_size_flag_merges_jobs(self, tmp_path):
        d = tmp_path / "clustered"
        main_plan(["--submit-dir", str(d), "-n", "20",
                   "--cluster-size", "5"])
        meta = json.loads((d / "plan.json").read_text())
        merged = [n for n in meta["jobs"] if n.startswith("merge_run_cap3")]
        assert len(merged) == 4  # 20 tasks / 5 per super-job
        assert main_run(["--submit-dir", str(d), "--seed", "0"]) == 0

    def test_cleanup_flag_adds_jobs(self, tmp_path):
        d = tmp_path / "cleaned"
        main_plan(["--submit-dir", str(d), "-n", "5", "--cleanup"])
        meta = json.loads((d / "plan.json").read_text())
        assert any(n.startswith("cleanup_") for n in meta["jobs"])
        assert main_run(["--submit-dir", str(d), "--seed", "0"]) == 0


class TestMonitordHook:
    def test_attempts_streamed_to_jsonl(self, tmp_path):
        from repro.core.workflow_factory import (
            build_blast2cap3_adag,
            default_catalogs,
        )
        from repro.perfmodel.task_models import PaperTaskModel
        from repro.sim.cluster import CampusCluster
        from repro.sim.engine import Simulator
        from repro.sim.rng import RngStreams
        from repro.wms.planner import plan

        adag = build_blast2cap3_adag(5, model=PaperTaskModel())
        sites, tc, rc = default_catalogs()
        planned = plan(adag, site_name="sandhills", sites=sites,
                       transformations=tc, replicas=rc)
        log = tmp_path / "live.jsonl"
        env = CampusCluster(Simulator(), streams=RngStreams(seed=0))
        result = DagmanScheduler(
            planned.dag, env,
            on_attempt=lambda a: append_attempt(log, a),
        ).run()
        assert result.success
        streamed = read_trace(log)
        assert len(streamed) == len(result.trace)
        assert {a.job_name for a in streamed} == {
            a.job_name for a in result.trace
        }


class TestValidateFlag:
    @pytest.fixture()
    def inputs(self, tmp_path):
        wl = generate_blast2cap3_workload(n_proteins=4, seed=9)
        t, a = tmp_path / "t.fasta", tmp_path / "a.out"
        write_fasta(t, wl.transcripts)
        write_tabular(a, wl.hits)
        return t, a, tmp_path

    def test_serial_validate(self, inputs, capsys):
        t, a, tmp = inputs
        rc = blast2cap3_main([
            "--transcripts", str(t), "--alignments", str(a),
            "--output", str(tmp / "o.fasta"), "--serial", "--validate",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Validation" in out
        assert "N50" in out
