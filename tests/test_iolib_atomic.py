"""Tests for the streaming atomic-write path (`atomic_open`).

The satellite guarantees: writers stream instead of buffering whole
files, a failed write never clobbers (or half-writes) the destination,
no temp files are left behind, and `.gz` destinations are finalised
(valid gzip trailer) before the rename.
"""

import gzip

import pytest

from repro.bio.fasta import FastaRecord, read_fasta, write_fasta
from repro.blast.tabular import TabularHit, read_tabular, write_tabular
from repro.util.iolib import atomic_open, atomic_write


def leftovers(tmp_path):
    """Hidden temp files left in the directory (should always be [])."""
    return [p.name for p in tmp_path.iterdir() if p.name.startswith(".")]


class TestAtomicOpen:
    def test_streaming_roundtrip(self, tmp_path):
        p = tmp_path / "out.txt"
        with atomic_open(p) as fh:
            for i in range(1000):
                fh.write(f"line {i}\n")
        assert p.read_text().splitlines()[999] == "line 999"
        assert leftovers(tmp_path) == []

    def test_gz_trailer_finalised(self, tmp_path):
        p = tmp_path / "out.txt.gz"
        with atomic_open(p) as fh:
            fh.write("payload " * 1000)
        # A missing trailer would raise on full decompression.
        assert gzip.decompress(p.read_bytes()).decode() == "payload " * 1000

    def test_error_leaves_destination_untouched(self, tmp_path):
        p = tmp_path / "out.txt"
        p.write_text("original")
        with pytest.raises(RuntimeError):
            with atomic_open(p) as fh:
                fh.write("partial garbage")
                raise RuntimeError("boom")
        assert p.read_text() == "original"
        assert leftovers(tmp_path) == []

    def test_error_before_first_write(self, tmp_path):
        p = tmp_path / "never.txt"
        with pytest.raises(RuntimeError):
            with atomic_open(p):
                raise RuntimeError("boom")
        assert not p.exists()
        assert leftovers(tmp_path) == []

    def test_creates_parent_dirs(self, tmp_path):
        p = tmp_path / "a" / "b" / "c.txt"
        with atomic_open(p) as fh:
            fh.write("deep")
        assert p.read_text() == "deep"

    def test_no_partial_visibility(self, tmp_path):
        # The destination must not exist until the handle closes cleanly.
        p = tmp_path / "late.txt"
        with atomic_open(p) as fh:
            fh.write("x" * 10_000)
            fh.flush()
            assert not p.exists()
        assert p.exists()


class TestAtomicWrite:
    def test_text_and_bytes(self, tmp_path):
        assert (atomic_write(tmp_path / "t.txt", "hi")).read_text() == "hi"
        assert (atomic_write(tmp_path / "b.bin", b"\x00\x01")).read_bytes() == b"\x00\x01"
        assert leftovers(tmp_path) == []

    def test_overwrites_atomically(self, tmp_path):
        p = tmp_path / "x.txt"
        atomic_write(p, "one")
        atomic_write(p, "two")
        assert p.read_text() == "two"


class TestWritersStream:
    """The FASTA/tabular path-writers route through atomic_open."""

    def test_failed_fasta_write_preserves_old_file(self, tmp_path):
        p = tmp_path / "t.fasta"
        write_fasta(p, [FastaRecord(id="ok", seq="ACGT")])

        def records():
            yield FastaRecord(id="first", seq="AC")
            raise RuntimeError("mid-stream failure")

        with pytest.raises(RuntimeError):
            write_fasta(p, records())
        assert [r.id for r in read_fasta(p)] == ["ok"]
        assert leftovers(tmp_path) == []

    def test_tabular_gz_roundtrip_via_atomic_open(self, tmp_path):
        hit = TabularHit(
            qseqid="t1", sseqid="p1", pident=98.0, length=50, mismatch=1,
            gapopen=0, qstart=1, qend=150, sstart=1, send=50,
            evalue=1e-30, bitscore=99.5,
        )
        p = tmp_path / "a.out.gz"
        assert write_tabular(p, [hit]) == 1
        assert [h.format() for h in read_tabular(p)] == [hit.format()]
        assert leftovers(tmp_path) == []
