"""End-to-end crash recovery: a real SIGKILL, a real resume.

The in-process property tests (``test_journal.py``) sweep crash points
with ``CrashInjected``; this module kills an actual ``repro-run``
subprocess with SIGKILL mid-journal-write — no atexit handlers, no
flushes, a genuinely unclean death — then resumes from the journal
directory and checks the merged run against an uninterrupted baseline.
"""

from __future__ import annotations

import json
import signal
import subprocess
import sys
from pathlib import Path

import pytest

from repro.observe.log import event_from_json
from repro.wms.cli import main_plan, main_run

REPO_SRC = Path(__file__).resolve().parent.parent / "src"

RUN_SHIM = (
    "import sys; from repro.wms.cli import main_run; "
    "sys.exit(main_run(sys.argv[1:]))"
)


def _plan(submit: Path, *, n=6, site="sandhills") -> None:
    rc = main_plan([
        "--submit-dir", str(submit), "-n", str(n), "--site", site,
    ])
    assert rc == 0


def _run_subprocess(args: list[str], env_extra=None) -> subprocess.CompletedProcess:
    import os

    env = dict(os.environ)
    env["PYTHONPATH"] = (
        str(REPO_SRC) + os.pathsep + env.get("PYTHONPATH", "")
    ).rstrip(os.pathsep)
    return subprocess.run(
        [sys.executable, "-c", RUN_SHIM, *args],
        capture_output=True, text=True, env=env, timeout=120,
    )


def _trace_rows(submit: Path) -> list[dict]:
    rows = []
    for line in (submit / "trace.jsonl").read_text().splitlines():
        rows.append(json.loads(line))
    return rows


@pytest.mark.slow
def test_sigkill_mid_run_then_resume(tmp_path):
    baseline = tmp_path / "baseline"
    _plan(baseline)
    rc = main_run([
        "--submit-dir", str(baseline), "--journal",
        str(tmp_path / "jr-baseline"),
    ])
    assert rc == 0
    baseline_rows = _trace_rows(baseline)
    baseline_jobs = {
        r["job_name"] for r in baseline_rows if r["status"] == "succeeded"
    }

    submit = tmp_path / "crashed"
    jdir = tmp_path / "jr"
    _plan(submit)

    # A real unclean death: SIGKILL from inside the journal append.
    proc = _run_subprocess([
        "--submit-dir", str(submit), "--journal", str(jdir),
        "--crash-at-record", "12", "--crash-mode", "kill",
    ])
    assert proc.returncode == -signal.SIGKILL, proc.stderr
    assert list(jdir.glob("wal-*.jsonl")), "crash left no WAL"

    # Resume in-process: recovery must reconcile the dead manager's
    # pids, truncate the torn tail, and finish the workflow.
    rc = main_run(["--submit-dir", str(submit), "--resume", str(jdir)])
    assert rc == 0

    # The merged trace equals the uninterrupted run's outcome: every
    # job succeeded, exactly once, and journaled-done jobs did not
    # re-execute after the resume.
    rows = _trace_rows(submit)
    succeeded = [r["job_name"] for r in rows if r["status"] == "succeeded"]
    assert set(succeeded) == baseline_jobs
    assert len(succeeded) == len(set(succeeded)), "duplicate execution"

    # A rescue-style resume DAG was written for DAGMan interop.
    resume_dags = list(submit.glob("*.resume.dag"))
    assert resume_dags

    # events.jsonl survived the SIGKILL line-complete and parses
    # end-to-end across both processes' appends.
    events = [
        event_from_json(json.loads(line))
        for line in (submit / "events.jsonl").read_text().splitlines()
    ]
    assert sum(e.kind.value == "workflow.end" for e in events) >= 1

    # Re-resuming a finished journal is a no-op, not a re-run.
    rc = main_run(["--submit-dir", str(submit), "--resume", str(jdir)])
    assert rc == 0
    assert _trace_rows(submit) == rows


@pytest.mark.slow
def test_crash_flag_requires_journal(tmp_path):
    submit = tmp_path / "s"
    _plan(submit, n=4)
    rc = main_run(["--submit-dir", str(submit), "--crash-at-record", "3"])
    assert rc == 2


@pytest.mark.slow
def test_raise_mode_exit_code_names_resume_command(tmp_path, capsys):
    submit = tmp_path / "s"
    jdir = tmp_path / "jr"
    _plan(submit, n=4)
    capsys.readouterr()  # drain the planner's chatter
    rc = main_run([
        "--submit-dir", str(submit), "--journal", str(jdir),
        "--crash-at-record", "6", "--crash-mode", "raise",
    ])
    assert rc == 3
    captured = capsys.readouterr()
    combined = captured.out + captured.err
    assert "--resume" in combined and str(jdir) in combined
