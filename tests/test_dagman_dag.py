"""Tests for the DAG model and .dag file round-trip."""

import pytest

from repro.dagman.dag import Dag, DagJob


def diamond() -> Dag:
    dag = Dag(name="diamond")
    for name in ("a", "b", "c", "d"):
        dag.add_job(DagJob(name=name, transformation=f"t_{name}", runtime=10))
    dag.add_edge("a", "b")
    dag.add_edge("a", "c")
    dag.add_edge("b", "d")
    dag.add_edge("c", "d")
    return dag


class TestDagJob:
    def test_validation(self):
        with pytest.raises(ValueError):
            DagJob(name="", transformation="t")
        with pytest.raises(ValueError):
            DagJob(name="a b", transformation="t")
        with pytest.raises(ValueError):
            DagJob(name="a", transformation="t", runtime=-1)
        with pytest.raises(ValueError):
            DagJob(name="a", transformation="t", retries=-1)


class TestDag:
    def test_duplicate_job_rejected(self):
        dag = Dag()
        dag.add_job(DagJob(name="a", transformation="t"))
        with pytest.raises(ValueError, match="duplicate"):
            dag.add_job(DagJob(name="a", transformation="t"))

    def test_edge_unknown_job(self):
        dag = Dag()
        dag.add_job(DagJob(name="a", transformation="t"))
        with pytest.raises(KeyError):
            dag.add_edge("a", "zz")

    def test_self_edge_rejected(self):
        dag = Dag()
        dag.add_job(DagJob(name="a", transformation="t"))
        with pytest.raises(ValueError, match="self"):
            dag.add_edge("a", "a")

    def test_cycle_rejected_and_rolled_back(self):
        dag = Dag()
        for n in "abc":
            dag.add_job(DagJob(name=n, transformation="t"))
        dag.add_edge("a", "b")
        dag.add_edge("b", "c")
        with pytest.raises(ValueError, match="cycle"):
            dag.add_edge("c", "a")
        # rollback: the bad edge must not remain
        assert "a" not in dag.children("c")
        assert dag.topological_order() == ["a", "b", "c"]

    def test_roots_and_leaves(self):
        dag = diamond()
        assert dag.roots() == ["a"]
        assert dag.leaves() == ["d"]

    def test_parents_children(self):
        dag = diamond()
        assert dag.parents("d") == {"b", "c"}
        assert dag.children("a") == {"b", "c"}

    def test_topological_order(self):
        order = diamond().topological_order()
        assert order.index("a") < order.index("b") < order.index("d")
        assert order.index("a") < order.index("c") < order.index("d")

    def test_critical_path(self):
        dag = diamond()  # all runtimes 10 -> path a-b-d = 30
        assert dag.critical_path_length() == 30.0

    def test_critical_path_empty(self):
        assert Dag().critical_path_length() == 0.0

    def test_len_and_edges(self):
        dag = diamond()
        assert len(dag) == 4
        assert set(dag.edges()) == {
            ("a", "b"), ("a", "c"), ("b", "d"), ("c", "d"),
        }


class TestDagFile:
    def test_roundtrip(self, tmp_path):
        dag = diamond()
        dag.jobs["b"] = DagJob(
            name="b", transformation="t_b", retries=3, priority=5
        )
        dag.done.add("a")
        path = tmp_path / "wf.dag"
        dag.write_dagfile(path)
        back = Dag.parse_dagfile(path, name="diamond")
        assert set(back.jobs) == set(dag.jobs)
        assert set(back.edges()) == set(dag.edges())
        assert back.jobs["b"].retries == 3
        assert back.jobs["b"].priority == 5
        assert back.done == {"a"}
        assert back.jobs["c"].transformation == "t_c"

    def test_file_syntax(self, tmp_path):
        path = tmp_path / "wf.dag"
        diamond().write_dagfile(path)
        text = path.read_text()
        assert "JOB a t_a.sub" in text
        assert "PARENT a CHILD b" in text

    def test_unknown_keyword_rejected(self, tmp_path):
        path = tmp_path / "bad.dag"
        path.write_text("FROBNICATE a\n")
        with pytest.raises(ValueError, match="unknown DAG file keyword"):
            Dag.parse_dagfile(path)

    def test_comments_ignored(self, tmp_path):
        path = tmp_path / "wf.dag"
        path.write_text("# comment\nJOB a t.sub\n\n")
        dag = Dag.parse_dagfile(path)
        assert list(dag.jobs) == ["a"]

    def test_multi_parent_child_line(self, tmp_path):
        path = tmp_path / "wf.dag"
        path.write_text(
            "JOB a t.sub\nJOB b t.sub\nJOB c t.sub\nJOB d t.sub\n"
            "PARENT a b CHILD c d\n"
        )
        dag = Dag.parse_dagfile(path)
        assert dag.parents("c") == {"a", "b"}
        assert dag.parents("d") == {"a", "b"}
