"""Tests for the Condor schedd + negotiator (fair share, preemption)."""

import pytest

from repro.dagman.condor import ClassAd
from repro.dagman.schedd import CondorPool, JobState, QueuedJob, Schedd
from repro.sim.engine import Simulator


def machines(n, **attrs):
    return [
        ClassAd(name=f"slot{i}", attributes={"speed": 1.0, **attrs})
        for i in range(n)
    ]


def make_pool(n_machines=2, **kwargs):
    sim = Simulator()
    pool = CondorPool(sim, machines(n_machines), **kwargs)
    return sim, pool


class TestSchedd:
    def test_submit_assigns_cluster_ids(self):
        sim = Simulator()
        schedd = Schedd(sim)
        a = schedd.submit(owner="alice", runtime=10)
        b = schedd.submit(owner="bob", runtime=10)
        assert (a.job_id, b.job_id) == ("1.0", "2.0")
        assert a.state is JobState.IDLE

    def test_hold_release_cycle(self):
        sim, pool = make_pool()
        job = pool.schedd.submit(owner="alice", runtime=10)
        pool.schedd.hold(job.job_id, reason="input missing")
        assert job.state is JobState.HELD
        assert job.hold_reason == "input missing"
        # Held jobs are never matched.
        sim.run(until=500)
        assert job.state is JobState.HELD
        pool.schedd.release(job.job_id)
        sim.run()
        assert job.state is JobState.COMPLETED

    def test_hold_running_rejected(self):
        sim, pool = make_pool()
        job = pool.schedd.submit(owner="alice", runtime=1000)
        sim.run(until=100)
        assert job.state is JobState.RUNNING
        with pytest.raises(ValueError, match="idle"):
            pool.schedd.hold(job.job_id)

    def test_remove(self):
        sim = Simulator()
        schedd = Schedd(sim)
        job = schedd.submit(owner="alice", runtime=10)
        schedd.remove(job.job_id)
        assert job.state is JobState.REMOVED

    def test_condor_q_renders(self):
        sim, pool = make_pool()
        pool.schedd.submit(owner="alice", runtime=100)
        pool.schedd.submit(owner="bob", runtime=100)
        listing = pool.schedd.condor_q()
        assert "alice" in listing and "bob" in listing
        assert "OWNER" in listing

    def test_runtime_validation(self):
        with pytest.raises(ValueError):
            QueuedJob(job_id="1.0", owner="a", ad=ClassAd(name="x"),
                      runtime=0)


class TestNegotiation:
    def test_jobs_start_on_cycle_boundaries(self):
        sim, pool = make_pool(negotiation_interval_s=60)
        job = pool.schedd.submit(owner="alice", runtime=30)
        sim.run()
        assert job.start_time == 60.0  # first cycle
        assert job.state is JobState.COMPLETED

    def test_requirements_respected(self):
        sim = Simulator()
        pool = CondorPool(
            sim,
            [
                ClassAd(name="plain", attributes={"has_cap3": False}),
                ClassAd(name="good", attributes={"has_cap3": True}),
            ],
        )
        job = pool.schedd.submit(
            owner="alice", runtime=10,
            ad=ClassAd(name="j", requirements="has_cap3"),
        )
        sim.run()
        assert job.machine == "good"

    def test_pool_requires_machines(self):
        with pytest.raises(ValueError):
            CondorPool(Simulator(), [])

    def test_completion_callback(self):
        done = []
        sim, pool = make_pool()
        pool.schedd.submit(
            owner="alice", runtime=10, on_complete=lambda j: done.append(j)
        )
        sim.run()
        assert len(done) == 1


class TestFairShare:
    def test_usage_accumulates_and_decays(self):
        sim, pool = make_pool(half_life_s=1000)
        job = pool.schedd.submit(owner="alice", runtime=500)
        sim.run()
        used = pool.usage("alice")
        # Charged 500 cpu-seconds, minus a few negotiation intervals of
        # decay between the charge and this query.
        assert used == pytest.approx(500, rel=0.1)
        # Advance the clock a half-life: usage halves.
        sim.schedule(1000, lambda: None)
        sim.run()
        assert pool.usage("alice") == pytest.approx(used / 2, rel=0.05)

    def test_light_user_gets_priority(self):
        sim, pool = make_pool(n_machines=1, preemption=False)
        # heavy builds up usage first.
        first = pool.schedd.submit(owner="heavy", runtime=5000)
        sim.run()
        assert first.state is JobState.COMPLETED
        # Both submit one job; the single slot should go to 'light'.
        h2 = pool.schedd.submit(owner="heavy", runtime=100)
        l1 = pool.schedd.submit(owner="light", runtime=100)
        sim.run()
        assert l1.start_time < h2.start_time
        assert pool.priority_order()[0] == "light"

    def test_preemption_evicts_heavy_user(self):
        sim, pool = make_pool(n_machines=1, preemption=True)
        hog = pool.schedd.submit(owner="heavy", runtime=4000)
        sim.run(until=500)
        assert hog.state is JobState.RUNNING
        # Build usage for heavy by charging... heavy is running with no
        # usage yet; give 'light' zero usage and submit:
        newcomer = pool.schedd.submit(owner="light", runtime=100)
        sim.run()
        # heavy had accrued usage only after eviction/charge; with both
        # at zero usage at decision time nothing happens until heavy
        # finishes... unless heavy's usage exceeded light's. Force the
        # scenario: heavy ran 500s+ before newcomer arrived? usage is
        # only charged at finish/evict, so check outcomes instead:
        assert newcomer.state is JobState.COMPLETED
        assert hog.state is JobState.COMPLETED

    def test_preemption_mechanism_direct(self):
        sim, pool = make_pool(n_machines=1, preemption=True)
        # Seed usage imbalance explicitly.
        pool._charge("heavy", 10_000)
        hog = pool.schedd.submit(owner="heavy", runtime=4000)
        sim.run(until=120)
        assert hog.state is JobState.RUNNING
        newcomer = pool.schedd.submit(owner="light", runtime=50)
        sim.run()
        assert pool.preemption_count >= 1
        assert hog.preemptions >= 1
        assert newcomer.state is JobState.COMPLETED
        assert hog.state is JobState.COMPLETED  # re-ran after eviction

    def test_no_preemption_when_disabled(self):
        sim, pool = make_pool(n_machines=1, preemption=False)
        pool._charge("heavy", 10_000)
        hog = pool.schedd.submit(owner="heavy", runtime=4000)
        sim.run(until=120)
        newcomer = pool.schedd.submit(owner="light", runtime=50)
        sim.run()
        assert pool.preemption_count == 0
        assert newcomer.start_time >= hog.end_time

    def test_negotiator_stops_when_queue_drains(self):
        sim, pool = make_pool()
        pool.schedd.submit(owner="alice", runtime=10)
        sim.run()
        cycles = pool.negotiation_cycles
        assert cycles >= 1
        assert sim.pending == 0  # no perpetual negotiation events
