"""Tests for repro.util.units: duration and byte-size round-trips."""

import pytest
from hypothesis import given, strategies as st

from repro.util.units import (
    format_bytes,
    format_duration,
    parse_bytes,
    parse_duration,
)


class TestFormatDuration:
    def test_paper_sandhills_n10_walltime(self):
        # 41,593 s is the paper's Sandhills n=10 wall time.
        assert format_duration(41593) == "11 hrs, 33 mins"

    def test_serial_100_hours(self):
        assert format_duration(360000) == "4 days, 4 hrs"

    def test_sub_minute(self):
        assert format_duration(42) == "42 secs"

    def test_sub_minute_precision(self):
        assert format_duration(59.44, precision=1) == "59.4 secs"

    def test_exact_minutes(self):
        assert format_duration(120) == "2 mins"

    def test_minutes_and_seconds(self):
        assert format_duration(150) == "2 mins, 30 secs"

    def test_exact_hours(self):
        assert format_duration(7200) == "2 hrs"

    def test_exact_days(self):
        assert format_duration(86400 * 2) == "2 days"

    def test_negative(self):
        assert format_duration(-120) == "-2 mins"

    def test_zero(self):
        assert format_duration(0) == "0 secs"


class TestParseDuration:
    def test_hours_word(self):
        assert parse_duration("100 hours") == 360000.0

    def test_compound(self):
        assert parse_duration("11 hrs, 33 mins") == 41580.0

    def test_bare_number_string(self):
        assert parse_duration("42") == 42.0

    def test_bare_number(self):
        assert parse_duration(42) == 42.0

    def test_float_number(self):
        assert parse_duration(1.5) == 1.5

    def test_single_letter_units(self):
        assert parse_duration("2h") == 7200.0
        assert parse_duration("3m") == 180.0
        assert parse_duration("10s") == 10.0
        assert parse_duration("1d") == 86400.0

    def test_unknown_unit_raises(self):
        with pytest.raises(ValueError, match="unknown duration unit"):
            parse_duration("5 parsecs")

    def test_garbage_raises(self):
        with pytest.raises(ValueError):
            parse_duration("not a duration")

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            parse_duration("")

    @given(st.integers(min_value=0, max_value=10**7))
    def test_format_parse_roundtrip_within_resolution(self, seconds):
        # format_duration rounds to its coarsest displayed unit; parsing
        # the result must land within that unit of the original.
        text = format_duration(seconds)
        parsed = parse_duration(text)
        if seconds < 60:
            resolution = 1
        elif seconds < 3600:
            resolution = 60
        elif seconds < 86400:
            resolution = 3600
        else:
            resolution = 86400
        assert abs(parsed - seconds) < resolution


class TestBytes:
    def test_paper_transcripts_size(self):
        assert format_bytes(404_000_000) == "404 MB"

    def test_paper_alignments_size(self):
        assert format_bytes(155_000_000) == "155 MB"

    def test_parse_mb(self):
        assert parse_bytes("404 MB") == 404_000_000

    def test_parse_binary(self):
        assert parse_bytes("1.5 KiB") == 1536

    def test_small(self):
        assert format_bytes(999) == "999 B"

    def test_binary_format(self):
        assert format_bytes(1536, binary=True) == "1.5 KiB"

    def test_parse_bare(self):
        assert parse_bytes("123") == 123
        assert parse_bytes(123) == 123

    def test_negative_format(self):
        assert format_bytes(-1000) == "-1 KB"

    def test_unknown_unit(self):
        with pytest.raises(ValueError):
            parse_bytes("5 floppies")

    @given(st.integers(min_value=0, max_value=10**14))
    def test_roundtrip_within_five_percent(self, n):
        text = format_bytes(n)
        parsed = parse_bytes(text)
        assert abs(parsed - n) <= max(1, 0.06 * n)
