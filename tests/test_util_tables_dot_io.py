"""Tests for repro.util tables, DOT emission, and I/O helpers."""

import os

import pytest

from repro.util.dot import DotGraph
from repro.util.iolib import atomic_write, file_checksum, sha256_text
from repro.util.tables import Table


class TestTable:
    def test_render_alignment(self):
        t = Table(["n", "walltime"], title="Fig. 4")
        t.add_row(10, 41593)
        t.add_row(300, 9800.0)
        out = t.render()
        lines = out.splitlines()
        assert lines[0] == "Fig. 4"
        assert lines[1].startswith("n")
        assert set(lines[2]) <= {"-", " "}
        assert "41593" in lines[3]
        assert "9800" in lines[4]  # float rendered without trailing .00

    def test_float_formatting(self):
        t = Table(["x"])
        t.add_row(1.23456)
        assert "1.23" in t.render()

    def test_none_cell(self):
        t = Table(["x", "y"])
        t.add_row(None, 1)
        assert t.rows[0][0] == "-"

    def test_wrong_arity(self):
        t = Table(["a", "b"])
        with pytest.raises(ValueError, match="expected 2 cells"):
            t.add_row(1)

    def test_extend(self):
        t = Table(["a"])
        t.extend([[1], [2], [3]])
        assert len(t.rows) == 3

    def test_markdown(self):
        t = Table(["a", "b"], title="T")
        t.add_row(1, 2)
        md = t.render_markdown()
        assert "| a | b |" in md
        assert "| 1 | 2 |" in md
        assert "**T**" in md


class TestDotGraph:
    def test_shapes_follow_figure_legend(self):
        g = DotGraph(name="fig2")
        g.add_node("transcripts.fasta", kind="file")
        g.add_node("split", kind="task")
        g.add_node("run_cap3_osg", kind="setup_task")
        out = g.render()
        assert "shape=box, style=rounded" in out
        assert "shape=ellipse" in out
        assert "color=red" in out

    def test_edge_requires_declared_nodes(self):
        g = DotGraph()
        g.add_node("a")
        with pytest.raises(ValueError, match="not declared"):
            g.add_edge("a", "b")

    def test_duplicate_node_same_attrs_ok(self):
        g = DotGraph()
        g.add_node("a", kind="task")
        g.add_node("a", kind="task")
        assert g.node_count == 1

    def test_conflicting_redeclaration_raises(self):
        g = DotGraph()
        g.add_node("a", kind="task")
        with pytest.raises(ValueError, match="different attrs"):
            g.add_node("a", kind="file")

    def test_duplicate_edges_collapsed(self):
        g = DotGraph()
        g.add_node("a")
        g.add_node("b")
        g.add_edge("a", "b")
        g.add_edge("a", "b")
        assert g.edge_count == 1

    def test_unknown_kind(self):
        g = DotGraph()
        with pytest.raises(ValueError, match="unknown node kind"):
            g.add_node("a", kind="triangle")

    def test_write(self, tmp_path):
        g = DotGraph(name="wf")
        g.add_node("a")
        path = tmp_path / "out" / "wf.dot"
        g.write(str(path))
        text = path.read_text()
        assert text.startswith('digraph "wf"')
        assert text.endswith("}\n")

    def test_quoting(self):
        g = DotGraph()
        g.add_node('we"ird', label='la"bel')
        assert '\\"' in g.render()


class TestIolib:
    def test_atomic_write_creates_parents(self, tmp_path):
        target = tmp_path / "a" / "b" / "c.txt"
        atomic_write(target, "hello")
        assert target.read_text() == "hello"

    def test_atomic_write_bytes(self, tmp_path):
        target = tmp_path / "x.bin"
        atomic_write(target, b"\x00\x01")
        assert target.read_bytes() == b"\x00\x01"

    def test_atomic_write_replaces(self, tmp_path):
        target = tmp_path / "f.txt"
        atomic_write(target, "one")
        atomic_write(target, "two")
        assert target.read_text() == "two"

    def test_no_temp_litter(self, tmp_path):
        atomic_write(tmp_path / "f.txt", "data")
        assert os.listdir(tmp_path) == ["f.txt"]

    def test_checksum_matches_known_sha256(self, tmp_path):
        target = tmp_path / "f.txt"
        target.write_text("abc")
        assert file_checksum(target) == (
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        )

    def test_sha256_text_agrees_with_file(self, tmp_path):
        target = tmp_path / "f.txt"
        target.write_text("workflow")
        assert sha256_text("workflow") == file_checksum(target)
