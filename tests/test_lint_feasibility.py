"""Unit tests for the resource-feasibility pass.

Covers the pool descriptors (derived from the simulator configs, so a
config change shows up here), the symbolic ClassAd matching, the
closest-missing-capability search, and the failure-model arithmetic
that RES003's proofs rest on.
"""

from __future__ import annotations

import math

import pytest

from repro.lint.feasibility import (
    EXHAUSTION_THRESHOLD,
    SitePool,
    attempt_failure_probability,
    closest_missing_capability,
    default_pools,
    never_matchable,
    pools_from_mapping,
    retry_exhaustion_probability,
)
from repro.sim.failures import NO_FAILURES, FailureModel
from repro.sim.machine import SOFTWARE_ATTRS


class TestDefaultPools:
    def test_modeled_platforms_present(self):
        pools = default_pools()
        assert set(pools) >= {"sandhills", "osg", "cloud", "local"}

    def test_sandhills_matches_campus_config(self):
        from repro.sim.cluster import CampusClusterConfig

        cfg = CampusClusterConfig()
        pool = default_pools()["sandhills"]
        assert pool.slots == cfg.group_slots
        assert pool.speed_min == pytest.approx(
            cfg.speed_mean * (1 - cfg.speed_spread)
        )
        assert pool.failures is NO_FAILURES
        assert pool.software == SOFTWARE_ATTRS

    def test_osg_matches_grid_config(self):
        from repro.sim.grid import GridConfig

        grid = GridConfig().with_sites()
        pool = default_pools()["osg"]
        assert pool.slots == sum(s.slots for s in grid.sites)
        assert pool.failures == grid.failures
        # every software attribute is *possible* somewhere on the grid
        assert pool.software == SOFTWARE_ATTRS

    def test_unknown_site_synthesized_fail_open(self):
        from repro.sim.network import CAMPUS_SHARED_FS
        from repro.wms.catalogs import SiteCatalog, SiteEntry

        sites = SiteCatalog()
        sites.add(
            SiteEntry(
                name="mystery", shared_filesystem=False,
                software_preinstalled=False, network=CAMPUS_SHARED_FS,
            )
        )
        pools = default_pools(sites)
        pool = pools["mystery"]
        assert pool.source == "synthesized"
        assert pool.slots is None  # elastic: RES002 stays quiet
        assert pool.software == SOFTWARE_ATTRS

    def test_pool_validation(self):
        with pytest.raises(ValueError, match="speed_min"):
            SitePool(site="x", slots=1, speed_min=0.0, speed_max=1.0,
                     software=())
        with pytest.raises(ValueError, match="slots"):
            SitePool(site="x", slots=0, speed_min=1.0, speed_max=1.0,
                     software=())


class TestPoolOverrides:
    def test_doctoring_removes_software(self):
        pools = pools_from_mapping(
            {"osg": {"software": ["has_python", "has_biopython"]}}
        )
        assert "has_cap3" not in pools["osg"].software
        assert pools["osg"].source == "override"
        # untouched fields keep their simulator-derived values
        assert pools["osg"].slots == default_pools()["osg"].slots

    def test_failure_model_override(self):
        pools = pools_from_mapping(
            {"osg": {"start_failure_prob": 0.5}}
        )
        base = default_pools()["osg"].failures
        assert pools["osg"].failures == FailureModel(
            start_failure_prob=0.5,
            eviction_rate_per_s=base.eviction_rate_per_s,
        )

    def test_brand_new_pool(self):
        pools = pools_from_mapping(
            {"campus2": {"slots": 64, "speed_min": 0.9, "speed_max": 1.1}}
        )
        assert pools["campus2"].slots == 64
        assert pools["campus2"].software == SOFTWARE_ATTRS


SOFTWARE_REQ = "has_python and has_biopython and has_cap3"


class TestSymbolicMatching:
    def test_full_pool_matches(self):
        assert not never_matchable(SOFTWARE_REQ, default_pools())

    def test_doctored_pool_never_matches(self):
        pools = pools_from_mapping(
            {"osg": {"software": ["has_python", "has_biopython"]}},
            base={"osg": default_pools()["osg"]},
        )
        assert never_matchable(SOFTWARE_REQ, pools)

    def test_closest_missing_capability_named(self):
        pools = pools_from_mapping(
            {"osg": {"software": ["has_python", "has_biopython"]}},
            base={"osg": default_pools()["osg"]},
        )
        assert closest_missing_capability(SOFTWARE_REQ, pools) == "has_cap3"

    def test_no_single_grant_helps(self):
        pools = pools_from_mapping(
            {"osg": {"software": []}},
            base={"osg": default_pools()["osg"]},
        )
        # two capabilities short: no single grant satisfies the expr
        assert closest_missing_capability(SOFTWARE_REQ, pools) is None

    def test_unparseable_expression_fails_closed(self):
        pools = {"p": default_pools()["local"]}
        assert never_matchable("has_python and and", pools)
        assert closest_missing_capability("has_python and and", pools) is None


class TestFailureArithmetic:
    def _pool(self, **kw):
        defaults = dict(
            site="osg", slots=600, speed_min=0.77, speed_max=1.885,
            software=SOFTWARE_ATTRS,
            failures=FailureModel(
                start_failure_prob=0.04, eviction_rate_per_s=1 / 20000
            ),
        )
        defaults.update(kw)
        return SitePool(**defaults)

    def test_attempt_probability_formula(self):
        pool = self._pool()
        p = attempt_failure_probability(5000.0, pool)
        effective = 5000.0 / 0.77
        expected = 0.04 + 0.96 * (1 - math.exp(-effective / 20000))
        assert p == pytest.approx(expected)

    def test_zero_runtime_is_start_failure_only(self):
        pool = self._pool()
        assert attempt_failure_probability(0.0, pool) == pytest.approx(0.04)

    def test_no_failures_pool_never_exhausts(self):
        pool = self._pool(failures=NO_FAILURES)
        assert retry_exhaustion_probability(1e6, 0, pool) == 0.0

    def test_exhaustion_decreases_with_retries(self):
        pool = self._pool()
        ps = [
            retry_exhaustion_probability(5000.0, r, pool)
            for r in range(5)
        ]
        assert ps == sorted(ps, reverse=True)
        assert ps[0] > EXHAUSTION_THRESHOLD > ps[4]

    def test_monotone_in_runtime(self):
        pool = self._pool()
        assert attempt_failure_probability(
            10_000.0, pool
        ) > attempt_failure_probability(1_000.0, pool)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(pytest.main([__file__, "-q"]))
