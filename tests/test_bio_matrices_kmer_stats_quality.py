"""Tests for matrices, k-mer index, Karlin-Altschul stats, and quality
trimming."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.bio.fastq import FastqRecord, phred_to_quality
from repro.bio.kmer import KmerIndex, kmers
from repro.bio.matrices import DNA_ORDER, PROTEIN_ORDER, blosum62, dna_matrix
from repro.bio.quality import QualityReport, TrimParams, quality_filter, trim_record
from repro.bio.stats import (
    GAPPED_BLOSUM62,
    UNGAPPED_BLOSUM62,
    bit_score,
    blosum62_ungapped_lambda,
    effective_lengths,
    evalue,
    solve_lambda,
)


class TestBlosum62:
    def test_known_entries(self):
        m = blosum62()
        assert m.score("W", "W") == 11
        assert m.score("A", "A") == 4
        assert m.score("E", "K") == 1
        assert m.score("W", "C") == -2
        assert m.score("*", "*") == 1

    def test_symmetric(self):
        m = blosum62().matrix
        assert np.array_equal(m, m.T)

    def test_case_insensitive(self):
        assert blosum62().score("w", "w") == 11

    def test_unknown_residue_maps_to_x(self):
        m = blosum62()
        assert m.score("J", "A") == m.score("X", "A")

    def test_encode_shape(self):
        m = blosum62()
        codes = m.encode("MEDLKV")
        assert codes.shape == (6,)
        assert PROTEIN_ORDER[codes[0]] == "M"

    def test_max_score(self):
        assert blosum62().max_score() == 11


class TestDnaMatrix:
    def test_defaults(self):
        m = dna_matrix()
        assert m.score("A", "A") == 2
        assert m.score("A", "C") == -5
        assert m.score("N", "A") == 0

    def test_custom(self):
        m = dna_matrix(match=1, mismatch=-1)
        assert m.score("G", "G") == 1
        assert m.score("G", "T") == -1

    def test_alphabet(self):
        assert dna_matrix().alphabet == DNA_ORDER


class TestKmers:
    def test_enumeration(self):
        assert list(kmers("ACGT", 3)) == [(0, "ACG"), (1, "CGT")]

    def test_k_longer_than_seq(self):
        assert list(kmers("AC", 3)) == []

    def test_bad_k(self):
        with pytest.raises(ValueError):
            list(kmers("ACGT", 0))


class TestKmerIndex:
    def test_add_and_lookup(self):
        idx = KmerIndex(k=3)
        idx.add("t1", "ACGTACG")
        assert ("t1", 0) in idx.lookup("ACG")
        assert ("t1", 4) in idx.lookup("ACG")

    def test_ambiguous_skipped(self):
        idx = KmerIndex(k=3)
        idx.add("t1", "ACNGT")
        assert len(idx) == 0

    def test_ambiguous_kept_when_disabled(self):
        idx = KmerIndex(k=3, skip_ambiguous=False)
        idx.add("t1", "ACNGT")
        assert len(idx) == 3

    def test_matches(self):
        idx = KmerIndex(k=4)
        idx.add("x", "AAACGTAAA")
        hits = list(idx.matches("TTACGTTT"))
        assert (2, "x", 2) in hits

    def test_lookup_wrong_length(self):
        idx = KmerIndex(k=3)
        with pytest.raises(ValueError):
            idx.lookup("ACGT")

    def test_contains_and_distinct(self):
        idx = KmerIndex(k=2)
        idx.add_all([("a", "ACAC"), ("b", "ACGT")])
        assert "AC" in idx
        assert idx.distinct_kmers == 4  # AC, CA, CG, GT

    def test_case_insensitive(self):
        idx = KmerIndex(k=2)
        idx.add("a", "acgt")
        assert idx.lookup("AC") == [("a", 0)]

    @given(st.text(alphabet="ACGT", min_size=5, max_size=50))
    @settings(max_examples=30)
    def test_every_kmer_of_indexed_seq_found(self, seq):
        idx = KmerIndex(k=5)
        idx.add("s", seq)
        for off, word in kmers(seq, 5):
            assert ("s", off) in idx.lookup(word)


class TestKarlinAltschul:
    def test_solved_lambda_matches_published(self):
        assert math.isclose(blosum62_ungapped_lambda(), 0.3176, abs_tol=2e-3)

    def test_bit_score_monotone(self):
        assert bit_score(100, GAPPED_BLOSUM62) > bit_score(50, GAPPED_BLOSUM62)

    def test_known_bit_score(self):
        # S=100 with gapped BLOSUM62: (0.267*100 - ln 0.041)/ln 2
        expected = (0.267 * 100 - math.log(0.041)) / math.log(2)
        assert math.isclose(bit_score(100, GAPPED_BLOSUM62), expected)

    def test_evalue_decreases_with_score(self):
        e1 = evalue(50, 300, 10**6)
        e2 = evalue(100, 300, 10**6)
        assert e2 < e1

    def test_evalue_grows_with_database(self):
        assert evalue(60, 300, 10**8) > evalue(60, 300, 10**6)

    def test_effective_lengths_floor(self):
        m_eff, n_eff = effective_lengths(10, 50, 5, UNGAPPED_BLOSUM62)
        assert m_eff >= 1 and n_eff >= 1

    def test_effective_shorter_than_actual(self):
        m_eff, n_eff = effective_lengths(500, 10**6, 100, GAPPED_BLOSUM62)
        assert m_eff < 500
        assert n_eff < 10**6

    def test_invalid_lengths(self):
        with pytest.raises(ValueError):
            effective_lengths(0, 10, 1, GAPPED_BLOSUM62)

    def test_solve_lambda_rejects_positive_expectation(self):
        with pytest.raises(ValueError, match="non-negative expected"):
            solve_lambda(dna_matrix(match=5, mismatch=1))


def _read(seq, scores, rid="r1"):
    return FastqRecord(id=rid, seq=seq, quality=phred_to_quality(scores))


class TestQualityTrim:
    def test_high_quality_untouched(self):
        r = _read("ACGTACGT", [40] * 8)
        assert trim_record(r).seq == "ACGTACGT"

    def test_low_quality_tail_cut(self):
        r = _read("ACGTACGTAAAA", [40] * 8 + [2] * 4)
        t = trim_record(r, TrimParams(window=4, min_window_mean=20))
        assert len(t) <= 8

    def test_terminal_base_clip(self):
        r = _read("AACGTACGTA", [1] + [40] * 8 + [1])
        t = trim_record(r, TrimParams(min_base_quality=3, window=4))
        assert t.seq == "ACGTACGT"

    def test_all_bad_read_empties(self):
        r = _read("ACGT", [1, 1, 1, 1])
        assert len(trim_record(r)) == 0

    def test_filter_drops_short(self):
        report = QualityReport()
        reads = [_read("ACGT", [40] * 4)]
        out = list(
            quality_filter(reads, TrimParams(min_length=50), report=report)
        )
        assert out == []
        assert report.too_short == 1
        assert report.dropped == 1

    def test_filter_drops_n_rich(self):
        report = QualityReport()
        reads = [_read("N" * 30 + "ACGT" * 10, [40] * 70)]
        params = TrimParams(min_length=10, max_n_fraction=0.1)
        assert list(quality_filter(reads, params, report=report)) == []
        assert report.too_many_n == 1

    def test_filter_passes_good(self):
        report = QualityReport()
        reads = [_read("ACGT" * 20, [38] * 80)]
        out = list(quality_filter(reads, report=report))
        assert len(out) == 1
        assert report.passed == 1

    def test_params_validation(self):
        with pytest.raises(ValueError):
            TrimParams(window=0)
        with pytest.raises(ValueError):
            TrimParams(max_n_fraction=1.5)

    @given(st.lists(st.integers(min_value=0, max_value=41), min_size=1, max_size=150))
    @settings(max_examples=30)
    def test_trim_never_lengthens(self, scores):
        r = _read("A" * len(scores), scores)
        assert len(trim_record(r)) <= len(r)
