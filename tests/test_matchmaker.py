"""The indexed matchmaker, pinned to the linear-scan oracle.

Same pattern as the scheduler rewrite (LegacyRescanScheduler): the
historical O(pool) scan stays in the tree as ``LinearMatchmaker``, and
property tests drive both implementations through identical
claim/release/find histories, asserting machine-for-machine agreement
— plus the dispatch-path bugfix regressions from PR 9 (memoized job
ads, shared blocked set, cached matchability, in-method redispatch
guard)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.dagman.condor import ClassAd
from repro.dagman.dag import Dag, DagJob
from repro.dagman.scheduler import DagmanScheduler
from repro.observe.bus import EventBus, EventRecorder
from repro.resilience.blacklist import Blacklist, BlacklistPolicy
from repro.sim.engine import Simulator
from repro.sim.failures import NO_FAILURES
from repro.sim.grid import GridConfig, GridSiteConfig, OpportunisticGrid
from repro.sim.machine import MachineSpec
from repro.sim.matchmaker import (
    IndexedMatchmaker,
    LinearMatchmaker,
    create_matchmaker,
)
from repro.sim.rng import RngStreams


def _machine(name, site="s1", speed=1.0, software=frozenset()):
    return MachineSpec(name=name, site=site, speed=speed,
                       software=frozenset(software))


def _job_ad(name="job", requirements=None, rank="speed"):
    return ClassAd(
        name=name,
        attributes={"transformation": "blast2cap3"},
        requirements=requirements,
        rank=rank,
    )


SOFTWARE = ("has_python", "has_biopython", "has_cap3")

#: Requirement expressions that cover the indexable shapes (software
#: predicates, site equality) and the fallback shapes (speed bounds).
REQUIREMENTS = st.sampled_from([
    None,
    "has_python",
    "has_python and has_biopython",
    "has_python and has_biopython and has_cap3",
    "has_cap3 or has_biopython",
    "not has_python",
    "site == 's1'",
    "site == 's2' and has_python",
    "speed > 1.0",          # references speed: indexed must fall back
    "speed >= 0.5 and has_python",
])


@st.composite
def pools(draw):
    n = draw(st.integers(min_value=1, max_value=12))
    machines = []
    for i in range(n):
        machines.append(_machine(
            f"m{i:02d}",
            site=draw(st.sampled_from(["s1", "s2"])),
            speed=draw(st.sampled_from([0.5, 1.0, 1.0, 1.5, 2.0])),
            software=draw(st.frozensets(st.sampled_from(SOFTWARE))),
        ))
    return machines


@st.composite
def histories(draw):
    """A sequence of find(+claim)/release/matchable operations."""
    ops = draw(st.lists(
        st.tuples(
            st.sampled_from(["find", "release", "matchable"]),
            REQUIREMENTS,
        ),
        min_size=1, max_size=30,
    ))
    return ops


class TestOracleEquivalence:
    @given(pools(), histories())
    @settings(max_examples=120, deadline=None)
    def test_indexed_matches_linear_machine_for_machine(self, machines, ops):
        linear = LinearMatchmaker(machines)
        indexed = IndexedMatchmaker(machines)
        claimed: list[str] = []
        for op, req in ops:
            ad = _job_ad(requirements=req)
            if op == "find":
                want = linear.find(ad)
                got = indexed.find(ad)
                assert got == want
                if want is not None:
                    linear.claim(want)
                    indexed.claim(want)
                    claimed.append(want)
            elif op == "release" and claimed:
                name = claimed.pop(0)
                linear.release(name)
                indexed.release(name)
            elif op == "matchable":
                assert indexed.matchable(ad) == linear.matchable(ad)
            assert indexed.free_count == linear.free_count
            assert indexed.free_names() == linear.free_names()

    @given(pools())
    @settings(max_examples=50, deadline=None)
    def test_blocked_set_equivalence(self, machines):
        linear = LinearMatchmaker(machines)
        indexed = IndexedMatchmaker(machines)
        blocked = frozenset(m.name for m in machines[::2])
        for req in (None, "has_python", "site == 's1'"):
            ad = _job_ad(requirements=req)
            assert indexed.find(ad, blocked=blocked) == linear.find(
                ad, blocked=blocked
            )

    def test_rank_ties_break_by_free_order(self):
        # Equal speeds: the oracle keeps the earliest free machine.
        machines = [_machine(f"m{i}", speed=1.0) for i in range(4)]
        linear = LinearMatchmaker(machines)
        indexed = IndexedMatchmaker(machines)
        ad = _job_ad()
        assert linear.find(ad) == indexed.find(ad) == "m0"
        for mm in (linear, indexed):
            mm.claim("m0")
            mm.release("m0")  # now youngest: goes behind m1..m3
        assert linear.find(ad) == indexed.find(ad) == "m1"

    def test_non_speed_rank_falls_back_identically(self):
        machines = [
            _machine("a", speed=2.0),
            _machine("b", speed=1.0, software={"has_python"}),
        ]
        linear = LinearMatchmaker(machines)
        indexed = IndexedMatchmaker(machines)
        # rank=None scores every machine 0: earliest free wins, not
        # the fastest.
        ad = _job_ad(rank=None)
        assert linear.find(ad) == indexed.find(ad) == "a"
        assert indexed.stats.linear_fallbacks == 1

    def test_malformed_requirements_raise_on_both(self):
        machines = [_machine("a")]
        for mm in (LinearMatchmaker(machines), IndexedMatchmaker(machines)):
            with pytest.raises((SyntaxError, ValueError)):
                mm.find(_job_ad(requirements="has_python and"))


class TestCaching:
    def test_matchable_verdict_cached_until_pool_changes(self):
        machines = [_machine("a", software={"has_python"})]
        indexed = IndexedMatchmaker(machines)
        ad = _job_ad(requirements="has_cap3")
        assert not indexed.matchable(ad)
        # The verdict is memoized: repeated admission checks hit the
        # cache (we poison it to prove subsequent calls never
        # re-evaluate), and stay off the O(pool) scan path entirely.
        key = next(iter(indexed._matchable_cache))
        indexed._matchable_cache[key] = True
        assert indexed.matchable(ad) is True
        indexed._matchable_cache[key] = False
        assert indexed.stats.matchable_scans == 0
        # Pool membership change invalidates: the newcomer has CAP3.
        indexed.add_machines([_machine("b", software={"has_cap3"})])
        assert indexed.matchable(ad)

    def test_matchable_invalidated_on_removal(self):
        machines = [
            _machine("a", software={"has_cap3"}),
            _machine("b"),
        ]
        indexed = IndexedMatchmaker(machines)
        ad = _job_ad(requirements="has_cap3")
        assert indexed.matchable(ad)
        indexed.remove_machine("a")
        assert not indexed.matchable(ad)

    def test_linear_oracle_keeps_uncached_scans(self):
        machines = [_machine(f"m{i}") for i in range(10)]
        linear = LinearMatchmaker(machines)
        ad = _job_ad(requirements="has_cap3")
        for _ in range(3):
            linear.matchable(ad)
        assert linear.stats.matchable_scans == 3

    def test_busy_machine_removal_refused(self):
        indexed = IndexedMatchmaker([_machine("a")])
        indexed.claim("a")
        with pytest.raises(ValueError):
            indexed.remove_machine("a")

    def test_duplicate_machine_refused(self):
        with pytest.raises(ValueError):
            LinearMatchmaker([_machine("a"), _machine("a")])

    def test_unknown_strategy_refused(self):
        with pytest.raises(ValueError):
            create_matchmaker("quantum", [_machine("a")])


class TestDispatchCostRegression:
    """Satellite 1: a non-matching head-of-line job must not cost
    O(pool) per queued neighbor per pass."""

    def test_indexed_find_scans_no_ads(self):
        # 200 machines, 2 capability buckets. A job nothing free
        # matches probes 2 buckets, not 200 ads.
        machines = [
            _machine(f"m{i:03d}",
                     software={"has_python"} if i % 2 else frozenset())
            for i in range(200)
        ]
        indexed = IndexedMatchmaker(machines)
        ad = _job_ad(requirements="has_cap3")
        for _ in range(100):
            assert indexed.find(ad) is None
        assert indexed.stats.ads_scanned == 0
        assert indexed.stats.bucket_probes <= 100 * 2

        linear = LinearMatchmaker(machines)
        for _ in range(100):
            assert linear.find(ad) is None
        assert linear.stats.ads_scanned == 100 * 200

    def test_grid_dispatch_passes_do_not_rescan_pool(self):
        # One software-rich slot, many bare slots. Jobs requiring the
        # software serialize on that slot: every completion re-runs
        # _dispatch over the whole waiting queue. Indexed matchmaking
        # must do that without any per-ad scans.
        sites = (GridSiteConfig("rich", 1, software_prob=1.0),
                 GridSiteConfig("bare", 80, software_prob=0.0))
        config = GridConfig(sites=sites, wait_spike_prob=0.0,
                            failures=NO_FAILURES)
        simulator = Simulator()
        grid = OpportunisticGrid(
            simulator, config, streams=RngStreams(seed=7)
        )
        dag = Dag()
        for i in range(20):
            dag.add_job(DagJob(
                name=f"j{i}", transformation="blast2cap3", runtime=50.0,
                retries=3,
                requirements="has_python and has_biopython and has_cap3",
            ))
        result = DagmanScheduler(dag, grid).run()
        assert result.success
        stats = grid.matchmaker.stats
        assert stats.ads_scanned == 0
        assert stats.linear_fallbacks == 0
        # Queue of ~20 entries, ~3 buckets (rich + bare speeds bucket by
        # identical non-speed attrs; sites differ → at most a handful),
        # ~20 passes: probes stay far below queue × pool.
        assert stats.bucket_probes < 20 * 20 * 10


class TestRedispatchGuard:
    """Satellite 3: the redispatch timer guard lives in the method."""

    def _grid_with_blacklist(self):
        simulator = Simulator()
        blacklist = Blacklist(
            BlacklistPolicy(threshold=1, cooldown_s=500.0)
        )
        config = GridConfig(
            sites=(GridSiteConfig("s", 4, software_prob=1.0),)
        )
        grid = OpportunisticGrid(
            simulator, config, streams=RngStreams(seed=3),
            blacklist=blacklist,
        )
        return simulator, grid, blacklist

    def test_in_method_guard_prevents_double_scheduling(self):
        simulator, grid, blacklist = self._grid_with_blacklist()
        blacklist.record_start_failure("x", "s", now=0.0)
        before = len(simulator._queue)
        grid._schedule_redispatch()
        assert grid._redispatch_pending
        grid._schedule_redispatch()  # second caller: guarded no-op
        assert len(simulator._queue) == before + 1

    def test_redispatch_after_queue_drained_is_noop(self):
        simulator, grid, blacklist = self._grid_with_blacklist()
        blacklist.record_start_failure("x", "s", now=0.0)
        grid._schedule_redispatch()  # queue is empty the whole time
        free_before = grid.matchmaker.free_names()
        simulator.run()
        assert not grid._redispatch_pending
        assert grid.matchmaker.free_names() == free_before
        assert grid.busy_slots == 0


def _run_grid_trace(matchmaker: str, *, seed: int = 11):
    simulator = Simulator()
    bus = EventBus()
    recorder = EventRecorder(bus)
    config = GridConfig(matchmaker=matchmaker)
    grid = OpportunisticGrid(
        simulator, config, streams=RngStreams(seed=seed), bus=bus
    )
    dag = Dag()
    for i in range(60):
        req = (
            "has_python and has_biopython and has_cap3"
            if i % 3 == 0
            else None
        )
        dag.add_job(DagJob(
            name=f"j{i:02d}", transformation="blast2cap3",
            runtime=100.0 + 7 * i, retries=8, needs_setup=(i % 3 != 0),
            requirements=req,
        ))
    for i in range(0, 50, 5):
        dag.add_edge(f"j{i:02d}", f"j{i + 5:02d}")
    result = DagmanScheduler(dag, grid).run()
    return result, recorder.sequence(), grid


class TestGridTraceParity:
    def test_indexed_grid_run_identical_to_linear(self):
        r_lin, seq_lin, g_lin = _run_grid_trace("linear")
        r_idx, seq_idx, g_idx = _run_grid_trace("indexed")
        assert r_lin.success and r_idx.success
        assert seq_idx == seq_lin
        assert r_idx.wall_time == r_lin.wall_time
        assert [
            (a.job_name, a.machine, a.attempt, a.exec_end)
            for a in r_idx.trace
        ] == [
            (a.job_name, a.machine, a.attempt, a.exec_end)
            for a in r_lin.trace
        ]
        # And the rewrite actually changed the work profile.
        assert g_lin.matchmaker.stats.ads_scanned > 0
        assert g_idx.matchmaker.stats.ads_scanned == 0

    @given(st.integers(min_value=0, max_value=30))
    @settings(max_examples=10, deadline=None)
    def test_parity_across_seeds(self, seed):
        r_lin, seq_lin, _ = _run_grid_trace("linear", seed=seed)
        r_idx, seq_idx, _ = _run_grid_trace("indexed", seed=seed)
        assert seq_idx == seq_lin
        assert r_idx.wall_time == r_lin.wall_time
