"""Tests for the discrete-event engine and seeded RNG streams."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.sim.engine import Simulator
from repro.sim.rng import RngStreams, bounded_lognormal


class TestSimulator:
    def test_events_fire_in_time_order(self):
        sim = Simulator()
        fired = []
        sim.schedule(5.0, lambda: fired.append("b"))
        sim.schedule(1.0, lambda: fired.append("a"))
        sim.schedule(9.0, lambda: fired.append("c"))
        sim.run()
        assert fired == ["a", "b", "c"]

    def test_ties_fire_in_schedule_order(self):
        sim = Simulator()
        fired = []
        for label in "abc":
            sim.schedule(3.0, lambda l=label: fired.append(l))
        sim.run()
        assert fired == ["a", "b", "c"]

    def test_clock_advances_to_event_time(self):
        sim = Simulator()
        seen = []
        sim.schedule(2.5, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [2.5]
        assert sim.now == 2.5

    def test_events_can_schedule_events(self):
        sim = Simulator()
        fired = []

        def first():
            fired.append(sim.now)
            sim.schedule(10.0, lambda: fired.append(sim.now))

        sim.schedule(1.0, first)
        sim.run()
        assert fired == [1.0, 11.0]

    def test_cancelled_event_skipped(self):
        sim = Simulator()
        fired = []
        event = sim.schedule(1.0, lambda: fired.append("no"))
        sim.schedule(2.0, lambda: fired.append("yes"))
        event.cancel()
        sim.run()
        assert fired == ["yes"]

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            sim.schedule(-1.0, lambda: None)

    def test_past_schedule_rejected(self):
        sim = Simulator(start_time=10.0)
        with pytest.raises(ValueError, match="past"):
            sim.schedule_at(5.0, lambda: None)

    def test_run_until_stops_clock(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append(1))
        sim.schedule(100.0, lambda: fired.append(2))
        sim.run(until=50.0)
        assert fired == [1]
        assert sim.now == 50.0
        assert sim.pending == 1

    def test_max_events_guard(self):
        sim = Simulator()

        def loop():
            sim.schedule(1.0, loop)

        sim.schedule(1.0, loop)
        with pytest.raises(RuntimeError, match="max_events"):
            sim.run(max_events=100)

    def test_counters(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        assert sim.pending == 2
        sim.run()
        assert sim.processed == 2
        assert sim.pending == 0

    @given(st.lists(st.floats(min_value=0, max_value=1e6), max_size=50))
    @settings(max_examples=30)
    def test_monotonic_clock_property(self, delays):
        sim = Simulator()
        times = []
        for d in delays:
            sim.schedule(d, lambda: times.append(sim.now))
        sim.run()
        assert times == sorted(times)


class TestRngStreams:
    def test_same_name_same_stream(self):
        s = RngStreams(seed=42)
        assert s.stream("x").random() == s.stream("x").random()

    def test_different_names_differ(self):
        s = RngStreams(seed=42)
        assert s.stream("x").random() != s.stream("y").random()

    def test_different_seeds_differ(self):
        assert (
            RngStreams(seed=1).stream("x").random()
            != RngStreams(seed=2).stream("x").random()
        )

    def test_child_namespaces(self):
        s = RngStreams(seed=7)
        a = s.child("site-a").stream("wait")
        b = s.child("site-b").stream("wait")
        assert a.random() != b.random()

    def test_bounded_lognormal_mean(self):
        rng = RngStreams(seed=3).stream("ln")
        draws = [bounded_lognormal(rng, 100.0, 0.5) for _ in range(4000)]
        mean = sum(draws) / len(draws)
        assert 85 < mean < 115  # arithmetic mean approximately preserved

    def test_bounded_lognormal_clamps(self):
        rng = RngStreams(seed=4).stream("ln")
        draws = [
            bounded_lognormal(rng, 100.0, 2.0, low=10, high=500)
            for _ in range(500)
        ]
        assert all(10 <= d <= 500 for d in draws)

    def test_sigma_zero_is_deterministic(self):
        rng = RngStreams(seed=5).stream("ln")
        assert bounded_lognormal(rng, 42.0, 0.0) == 42.0

    def test_validation(self):
        rng = RngStreams(seed=6).stream("ln")
        with pytest.raises(ValueError):
            bounded_lognormal(rng, -1.0, 0.5)
        with pytest.raises(ValueError):
            bounded_lognormal(rng, 1.0, -0.5)
