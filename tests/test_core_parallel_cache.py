"""Parallel blast2cap3 ≡ serial, and the content-addressed cache.

The tentpole guarantees under test:

* :func:`repro.core.parallel.blast2cap3_parallel` is record-for-record
  identical to :func:`repro.core.blast2cap3.blast2cap3_serial` for
  *every* ``jobs`` / ``n`` / ``strategy`` / ``executor`` combination;
* a warm :class:`repro.core.cache.ResultCache` changes timings, never
  outputs — and a fully warm cache performs **zero** CAP3
  recomputations (hit count == mergeable cluster count);
* a corrupted cache entry degrades to recomputation, never a crash.
"""

import json

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.blast.blastx import BlastXParams, blastx_many
from repro.blast.database import ProteinDatabase
from repro.cap3.assembler import Cap3Params
from repro.core.blast2cap3 import blast2cap3_serial
from repro.core.clusters import cluster_transcripts
from repro.core.cache import (
    CLUSTER_MERGE_KIND,
    CacheStats,
    ResultCache,
    cached_blastx_hits,
    cached_merge_cluster,
    cluster_merge_key,
)
from repro.core.parallel import blast2cap3_parallel
from repro.datagen.transcripts import TranscriptomeSpec
from repro.datagen.workload import generate_blast2cap3_workload
from repro.observe.bus import EventBus, EventRecorder
from repro.observe.events import EventKind
from repro.observe.metrics import MetricsRegistry, instrument


@pytest.fixture(scope="module")
def workload():
    return generate_blast2cap3_workload(
        n_proteins=10,
        spec=TranscriptomeSpec(
            mean_fragments_per_gene=3.0,
            noise_transcripts=4,
            error_rate=0.002,
        ),
        seed=101,
    )


@pytest.fixture(scope="module")
def serial(workload):
    return blast2cap3_serial(workload.transcripts, workload.hits)


def assert_identical(a, b):
    """Record-for-record equality, same order, same accounting."""
    assert [(r.id, r.seq, r.description) for r in a.joined] == [
        (r.id, r.seq, r.description) for r in b.joined
    ]
    assert [(r.id, r.seq, r.description) for r in a.unjoined] == [
        (r.id, r.seq, r.description) for r in b.unjoined
    ]
    assert a.input_count == b.input_count
    assert a.cluster_count == b.cluster_count
    assert a.mergeable_cluster_count == b.mergeable_cluster_count
    assert a.merged_transcript_count == b.merged_transcript_count
    assert [(r.id, r.seq) for r in a.output_records] == [
        (r.id, r.seq) for r in b.output_records
    ]


class TestParallelEqualsSerial:
    @given(
        jobs=st.integers(min_value=1, max_value=6),
        n=st.one_of(st.none(), st.integers(min_value=1, max_value=12)),
        strategy=st.sampled_from(["balanced", "round_robin"]),
        executor=st.sampled_from(["thread", "serial"]),
    )
    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    def test_any_jobs_n_strategy(self, workload, serial, jobs, n, strategy, executor):
        result = blast2cap3_parallel(
            workload.transcripts,
            workload.hits,
            jobs=jobs,
            n=n,
            strategy=strategy,
            executor=executor,
        )
        assert_identical(result, serial)

    def test_real_process_pool(self, workload, serial):
        result = blast2cap3_parallel(
            workload.transcripts, workload.hits, jobs=2, n=4,
            executor="process",
        )
        assert_identical(result, serial)

    def test_defaults(self, workload, serial):
        assert_identical(
            blast2cap3_parallel(
                workload.transcripts, workload.hits, executor="thread"
            ),
            serial,
        )

    def test_bad_args_rejected(self, workload):
        with pytest.raises(ValueError, match="jobs"):
            blast2cap3_parallel(workload.transcripts, workload.hits, jobs=0)
        with pytest.raises(ValueError, match="n must"):
            blast2cap3_parallel(workload.transcripts, workload.hits, n=0)
        with pytest.raises(ValueError, match="duplicate"):
            blast2cap3_parallel(
                workload.transcripts + workload.transcripts[:1], workload.hits
            )

    def test_empty_inputs(self):
        result = blast2cap3_parallel([], [], jobs=2)
        assert result.output_count == 0


class TestWarmCache:
    def test_warm_cache_identical_and_zero_recompute(self, workload, serial, tmp_path):
        cache = ResultCache(tmp_path / "store")
        cold = blast2cap3_parallel(
            workload.transcripts, workload.hits,
            jobs=2, executor="thread", cache=cache,
        )
        assert_identical(cold, serial)
        assert cache.stats.hits == 0
        assert cache.stats.misses == serial.mergeable_cluster_count
        assert cache.stats.puts == serial.mergeable_cluster_count

        warm_cache = ResultCache(tmp_path / "store")
        warm = blast2cap3_parallel(
            workload.transcripts, workload.hits,
            jobs=2, executor="thread", cache=warm_cache,
        )
        assert_identical(warm, serial)
        # The acceptance criterion: every mergeable cluster was served
        # from the store — zero CAP3 recomputations.
        assert warm_cache.stats.hits == serial.mergeable_cluster_count
        assert warm_cache.stats.misses == 0
        assert warm_cache.stats.puts == 0
        assert warm_cache.stats.hit_rate == 1.0

    def test_param_change_misses(self, workload, tmp_path):
        cache = ResultCache(tmp_path)
        blast2cap3_parallel(
            workload.transcripts, workload.hits,
            jobs=1, cache=cache,
        )
        other = ResultCache(tmp_path)
        blast2cap3_parallel(
            workload.transcripts, workload.hits,
            jobs=1, cache=other,
            cap3_params=Cap3Params(min_overlap_length=35),
        )
        assert other.stats.hits == 0  # different params → different keys

    def test_corrupt_entries_recomputed_not_crash(self, workload, serial, tmp_path):
        cache = ResultCache(tmp_path)
        blast2cap3_parallel(
            workload.transcripts, workload.hits,
            jobs=2, executor="thread", cache=cache,
        )
        # Truncate every stored entry mid-JSON.
        entries = sorted((tmp_path / CLUSTER_MERGE_KIND).rglob("*.json"))
        assert entries
        for path in entries:
            path.write_text(path.read_text()[: len(path.read_text()) // 2])

        damaged = ResultCache(tmp_path)
        result = blast2cap3_parallel(
            workload.transcripts, workload.hits,
            jobs=2, executor="thread", cache=damaged,
        )
        assert_identical(result, serial)
        assert damaged.stats.corrupt == len(entries)
        assert damaged.stats.hits == 0

    def test_wrong_schema_entry_is_a_miss(self, workload, tmp_path):
        cache = ResultCache(tmp_path)
        cluster = next(
            c for c in cluster_transcripts(workload.hits)[0] if c.is_mergeable
        )
        by_id = {t.id: t for t in workload.transcripts}
        key = cluster_merge_key(cluster, by_id, Cap3Params())
        path = cache.path_for(CLUSTER_MERGE_KIND, key)
        path.parent.mkdir(parents=True)
        path.write_text(json.dumps({"key": "someone-else", "value": 1}))
        assert cache.get(CLUSTER_MERGE_KIND, key) is None
        assert cache.stats.corrupt == 1
        # cached_merge_cluster then recomputes and repairs the entry.
        outcome = cached_merge_cluster(cache, cluster, by_id)
        assert cache.get(CLUSTER_MERGE_KIND, key) is not None
        again = cached_merge_cluster(cache, cluster, by_id)
        assert [(c.id, c.seq) for c in again[0]] == [
            (c.id, c.seq) for c in outcome[0]
        ]


class TestCacheObservability:
    def test_events_and_counters(self, workload, tmp_path):
        bus = EventBus()
        recorder = EventRecorder(
            bus, kinds=[EventKind.CACHE_HIT, EventKind.CACHE_MISS]
        )
        registry = MetricsRegistry()
        instrument(bus, registry)

        cache = ResultCache(tmp_path, bus=bus)
        blast2cap3_parallel(
            workload.transcripts, workload.hits,
            jobs=1, cache=cache,
        )
        misses = [e for e in recorder.events if e.kind is EventKind.CACHE_MISS]
        assert len(misses) == cache.stats.misses
        assert all(
            e.detail["kind"] == CLUSTER_MERGE_KIND for e in misses
        )
        assert (
            registry.counter(
                "cache_misses_total", {"kind": CLUSTER_MERGE_KIND}
            ).value
            == cache.stats.misses
        )

        # bus only: the instrumented registry picks hits up from events
        # (passing the registry too would double-count).
        warm = ResultCache(tmp_path, bus=bus)
        blast2cap3_parallel(
            workload.transcripts, workload.hits,
            jobs=1, cache=warm,
        )
        hits = [e for e in recorder.events if e.kind is EventKind.CACHE_HIT]
        assert len(hits) == warm.stats.hits > 0
        assert (
            registry.counter(
                "cache_hits_total", {"kind": CLUSTER_MERGE_KIND}
            ).value
            == warm.stats.hits
        )

    def test_direct_registry_without_bus(self, workload, tmp_path):
        registry = MetricsRegistry()
        cache = ResultCache(tmp_path, registry=registry)
        blast2cap3_parallel(
            workload.transcripts, workload.hits, jobs=1, cache=cache
        )
        assert (
            registry.counter(
                "cache_misses_total", {"kind": CLUSTER_MERGE_KIND}
            ).value
            == cache.stats.misses
            > 0
        )

    def test_stats_arithmetic(self):
        stats = CacheStats(hits=3, misses=1)
        assert stats.lookups == 4
        assert stats.hit_rate == 0.75
        assert CacheStats().hit_rate == 0.0


class TestCachedBlastx:
    def test_round_trips_hits_exactly(self, workload, tmp_path):
        database = ProteinDatabase(records=list(workload.proteins))
        params = BlastXParams()
        direct = list(blastx_many(workload.transcripts, database, params))

        cache = ResultCache(tmp_path)
        cold = cached_blastx_hits(
            cache, workload.transcripts, database, params, batch_size=8
        )
        assert [h.format() for h in cold] == [h.format() for h in direct]
        assert cache.stats.hits == 0 and cache.stats.puts > 0

        warm_cache = ResultCache(tmp_path)
        warm = cached_blastx_hits(
            warm_cache, workload.transcripts, database, params, batch_size=8
        )
        assert [h.format() for h in warm] == [h.format() for h in direct]
        assert warm_cache.stats.misses == 0
        assert warm_cache.stats.hits == cache.stats.puts

    def test_no_cache_passthrough(self, workload):
        database = ProteinDatabase(records=list(workload.proteins))
        direct = list(blastx_many(workload.transcripts, database, BlastXParams()))
        assert [
            h.format()
            for h in cached_blastx_hits(None, workload.transcripts, database)
        ] == [h.format() for h in direct]

    def test_batch_size_validated(self, workload, tmp_path):
        database = ProteinDatabase(records=list(workload.proteins))
        with pytest.raises(ValueError, match="batch_size"):
            cached_blastx_hits(
                ResultCache(tmp_path), workload.transcripts, database,
                batch_size=0,
            )
