"""End-to-end tests of the BLASTX driver on constructed transcripts."""

import random

import pytest

from repro.bio.fasta import FastaRecord
from repro.bio.seq import reverse_complement, translate
from repro.blast.blastx import BlastXParams, blastx, blastx_many
from repro.blast.database import ProteinDatabase

#: One representative codon per amino acid, for reverse translation.
CODON_FOR = {
    "A": "GCT", "R": "CGT", "N": "AAT", "D": "GAT", "C": "TGT",
    "Q": "CAA", "E": "GAA", "G": "GGT", "H": "CAT", "I": "ATT",
    "L": "CTT", "K": "AAA", "M": "ATG", "F": "TTT", "P": "CCT",
    "S": "TCT", "T": "ACT", "W": "TGG", "Y": "TAT", "V": "GTT",
}


def reverse_translate(protein: str) -> str:
    return "".join(CODON_FOR[aa] for aa in protein)


def random_protein(rng: random.Random, n: int) -> str:
    return "".join(rng.choice(list(CODON_FOR)) for _ in range(n))


@pytest.fixture(scope="module")
def setup():
    rng = random.Random(42)
    prot_a = random_protein(rng, 80)
    prot_b = random_protein(rng, 70)
    db = ProteinDatabase(
        records=[
            FastaRecord(id="protA", seq=prot_a),
            FastaRecord(id="protB", seq=prot_b),
        ]
    )
    return rng, prot_a, prot_b, db


class TestBlastX:
    def test_forward_frame_hit(self, setup):
        rng, prot_a, _, db = setup
        dna = "GG" + reverse_translate(prot_a) + "AA"  # frame +3
        hits = blastx(FastaRecord(id="t1", seq=dna), db)
        assert hits, "expected a hit for an exact coding transcript"
        best = hits[0]
        assert best.sseqid == "protA"
        assert best.pident > 95.0
        assert not best.is_minus_frame
        # The aligned DNA span must translate back to the protein span.
        frame_offset = (best.qstart - 1) % 3
        assert translate(dna, frame=frame_offset)  # sanity: frame valid

    def test_reverse_frame_hit(self, setup):
        rng, prot_a, _, db = setup
        dna = reverse_complement("G" + reverse_translate(prot_a) + "AA")
        hits = blastx(FastaRecord(id="t2", seq=dna), db)
        assert hits
        best = hits[0]
        assert best.sseqid == "protA"
        assert best.is_minus_frame

    def test_coordinates_cover_coding_region(self, setup):
        rng, prot_a, _, db = setup
        prefix, suffix = "GGAGG", "TTCTT"
        dna = prefix + reverse_translate(prot_a) + suffix
        (best, *_) = blastx(FastaRecord(id="t3", seq=dna), db)
        assert best.qstart >= len(prefix) - 3 + 1
        assert best.qend <= len(dna) - len(suffix) + 3
        span = best.qend - best.qstart + 1
        assert span >= 3 * 70  # most of the 80-aa protein

    def test_unrelated_query_no_hits(self, setup):
        rng, _, _, db = setup
        dna = "".join(random.Random(7).choice("ACGT") for _ in range(400))
        hits = blastx(FastaRecord(id="noise", seq=dna), db)
        assert hits == []

    def test_diverged_homolog_still_hits(self, setup):
        rng, prot_a, _, db = setup
        # Mutate ~10% of residues; BLASTX must still find it.
        mutated = list(prot_a)
        positions = rng.sample(range(len(mutated)), 8)
        for p in positions:
            mutated[p] = rng.choice(list(CODON_FOR))
        dna = reverse_translate("".join(mutated))
        hits = blastx(FastaRecord(id="t4", seq=dna), db)
        assert hits
        assert hits[0].sseqid == "protA"
        assert hits[0].pident < 100.0

    def test_two_subjects_distinguished(self, setup):
        rng, prot_a, prot_b, db = setup
        dna = reverse_translate(prot_b)
        hits = blastx(FastaRecord(id="t5", seq=dna), db)
        assert hits[0].sseqid == "protB"

    def test_chimeric_query_hits_both(self, setup):
        rng, prot_a, prot_b, db = setup
        dna = reverse_translate(prot_a[:50]) + reverse_translate(prot_b[:50])
        hits = blastx(FastaRecord(id="chimera", seq=dna), db)
        subjects = {h.sseqid for h in hits}
        assert subjects == {"protA", "protB"}

    def test_evalue_cutoff_respected(self, setup):
        rng, prot_a, _, db = setup
        dna = reverse_translate(prot_a)
        strict = BlastXParams(evalue_cutoff=1e-300)
        assert blastx(FastaRecord(id="t6", seq=dna), db, strict) == []

    def test_hits_sorted_by_evalue(self, setup):
        rng, prot_a, prot_b, db = setup
        dna = reverse_translate(prot_a) + reverse_translate(prot_b[:30])
        hits = blastx(FastaRecord(id="t7", seq=dna), db)
        evalues = [h.evalue for h in hits]
        assert evalues == sorted(evalues)

    def test_blastx_many_groups_by_query(self, setup):
        rng, prot_a, prot_b, db = setup
        queries = [
            FastaRecord(id="q1", seq=reverse_translate(prot_a)),
            FastaRecord(id="q2", seq=reverse_translate(prot_b)),
        ]
        hits = list(blastx_many(queries, db))
        qids = [h.qseqid for h in hits]
        assert qids == sorted(qids, key=lambda q: ["q1", "q2"].index(q))
        assert {h.qseqid for h in hits} == {"q1", "q2"}

    def test_one_hit_mode_finds_at_least_two_hit_results(self, setup):
        rng, prot_a, _, db = setup
        dna = reverse_translate(prot_a)
        q = FastaRecord(id="t8", seq=dna)
        two = blastx(q, db, BlastXParams(two_hit=True))
        one = blastx(q, db, BlastXParams(two_hit=False))
        assert one and two
        assert one[0].bitscore >= two[0].bitscore - 1e-9

    def test_params_validation(self):
        with pytest.raises(ValueError):
            BlastXParams(gap=1)
        with pytest.raises(ValueError):
            BlastXParams(evalue_cutoff=0.0)
