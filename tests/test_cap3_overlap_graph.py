"""Tests for overlap detection, orientation, and greedy layout."""

import random

import pytest

from repro.bio.seq import reverse_complement
from repro.cap3.graph import build_layouts, orient_reads
from repro.cap3.overlap import (
    Overlap,
    OverlapKind,
    candidate_pairs,
    compute_overlap,
    strands_agree,
)


def random_dna(rng: random.Random, n: int) -> str:
    return "".join(rng.choice("ACGT") for _ in range(n))


@pytest.fixture()
def rng():
    return random.Random(1234)


class TestCandidatePairs:
    def test_overlapping_reads_are_candidates(self, rng):
        genome = random_dna(rng, 300)
        reads = {"a": genome[:180], "b": genome[120:]}
        assert ("a", "b") in list(candidate_pairs(reads))

    def test_unrelated_reads_are_not_candidates(self, rng):
        reads = {"a": random_dna(rng, 200), "b": random_dna(rng, 200)}
        assert list(candidate_pairs(reads)) == []

    def test_reverse_strand_pair_detected(self, rng):
        genome = random_dna(rng, 300)
        reads = {"a": genome[:180], "b": reverse_complement(genome[120:])}
        assert ("a", "b") in list(candidate_pairs(reads))

    def test_pair_emitted_once(self, rng):
        genome = random_dna(rng, 300)
        reads = {"a": genome[:200], "b": genome[100:]}
        pairs = list(candidate_pairs(reads))
        assert pairs.count(("a", "b")) == 1

    def test_matches_naive_distinct_count_reference(self, rng):
        # Regression for the early-acceptance rewrite: the accepted
        # pairs must equal a naive reference that materialises the full
        # distinct shared-word set per pair and thresholds at the end.
        from repro.bio.kmer import kmers

        genome = random_dna(rng, 500)
        reads = {}
        for i in range(12):
            start = rng.randrange(0, 320)
            seq = genome[start : start + rng.randrange(60, 180)]
            if rng.random() < 0.3:
                seq = reverse_complement(seq)
            reads[f"r{i}"] = seq

        k, threshold = 12, 3

        def words(seq):
            return {w for _, w in kmers(seq.upper(), k)}

        fwd = {rid: words(seq) for rid, seq in reads.items()}
        both = {
            rid: words(seq) | words(reverse_complement(seq))
            for rid, seq in reads.items()
        }
        ids = list(reads)
        expected = {
            (a, b)
            for i, a in enumerate(ids)
            for b in ids[i + 1 :]
            # A shared word is counted when either read's strand variant
            # contains a word indexed from the other's forward strand.
            if len((both[a] & fwd[b]) | (both[b] & fwd[a])) >= threshold
        }

        got = list(candidate_pairs(reads, k=k, min_shared_kmers=threshold))
        assert len(got) == len(set(got))  # each pair at most once
        assert set(got) == expected

    def test_low_threshold_accepts_single_shared_word(self, rng):
        genome = random_dna(rng, 100)
        reads = {"a": genome[:40], "b": genome[28:60]}
        assert ("a", "b") in list(
            candidate_pairs(reads, k=12, min_shared_kmers=1)
        )


class TestStrandsAgree:
    def test_same_strand(self, rng):
        genome = random_dna(rng, 200)
        assert strands_agree(genome[:150], genome[50:])

    def test_opposite_strand(self, rng):
        genome = random_dna(rng, 200)
        assert not strands_agree(genome[:150], reverse_complement(genome[50:]))


class TestComputeOverlap:
    def test_dovetail_detected_either_order(self, rng):
        genome = random_dna(rng, 300)
        left, right = genome[:180], genome[120:]
        ov = compute_overlap("x", right, "y", left)
        assert ov is not None
        assert ov.kind is OverlapKind.DOVETAIL
        assert ov.a == "y"  # left read is always `a`
        assert ov.length >= 55

    def test_containment_detected(self, rng):
        genome = random_dna(rng, 300)
        ov = compute_overlap("big", genome, "small", genome[100:200])
        assert ov is not None
        assert ov.kind is OverlapKind.CONTAINMENT
        assert ov.a == "big"

    def test_short_overlap_rejected(self, rng):
        genome = random_dna(rng, 200)
        reads = (genome[:110], genome[90:])  # 20bp overlap < 40 default
        assert compute_overlap("a", reads[0], "b", reads[1]) is None

    def test_low_identity_rejected(self, rng):
        genome = random_dna(rng, 300)
        left = genome[:180]
        right = list(genome[120:])
        # Mutate a third of the shared region.
        for i in range(0, 60, 3):
            right[i] = "A" if right[i] != "A" else "C"
        assert (
            compute_overlap("a", left, "b", "".join(right), min_identity=0.9)
            is None
        )

    def test_validation(self):
        with pytest.raises(ValueError, match="distinct"):
            Overlap(
                a="x", b="x", kind=OverlapKind.DOVETAIL,
                length=50, identity=0.9, score=10, a_start=0,
            )
        with pytest.raises(ValueError, match="identity"):
            Overlap(
                a="x", b="y", kind=OverlapKind.DOVETAIL,
                length=50, identity=1.5, score=10, a_start=0,
            )


class TestOrientReads:
    def test_component_gets_consistent_flips(self, rng):
        genome = random_dna(rng, 400)
        reads = {
            "a": genome[:200],
            "b": reverse_complement(genome[120:320]),
            "c": genome[240:],
        }
        pairs = [("a", "b"), ("b", "c")]
        flips = orient_reads(reads, pairs)
        assert flips["a"] != flips["b"]
        assert flips["b"] != flips["c"]
        assert flips["a"] == flips["c"]

    def test_isolated_reads_not_flipped(self):
        flips = orient_reads({"solo": "ACGTACGTACGT"}, [])
        assert flips == {"solo": False}


class TestBuildLayouts:
    def test_three_read_chain(self, rng):
        genome = random_dna(rng, 500)
        reads = {
            "r1": genome[:220],
            "r2": genome[150:380],
            "r3": genome[300:],
        }
        layouts, contained = build_layouts(reads)
        assert contained == {}
        assert len(layouts) == 1
        layout = layouts[0]
        assert set(layout.read_ids) == {"r1", "r2", "r3"}
        offsets = {r.read_id: r.offset for r in layout.reads}
        assert offsets["r1"] < offsets["r2"] < offsets["r3"]

    def test_contained_read_mapped_to_container(self, rng):
        genome = random_dna(rng, 400)
        reads = {"big": genome, "small": genome[100:250]}
        layouts, contained = build_layouts(reads)
        assert contained == {"small": "big"}
        assert layouts == []

    def test_unrelated_reads_make_no_layout(self, rng):
        reads = {
            "a": random_dna(rng, 200),
            "b": random_dna(rng, 200),
        }
        layouts, contained = build_layouts(reads)
        assert layouts == []
        assert contained == {}

    def test_two_separate_chains(self, rng):
        g1, g2 = random_dna(rng, 300), random_dna(rng, 300)
        reads = {
            "a1": g1[:180], "a2": g1[120:],
            "b1": g2[:180], "b2": g2[120:],
        }
        layouts, _ = build_layouts(reads)
        assert len(layouts) == 2
        groups = [set(l.read_ids) for l in layouts]
        assert {"a1", "a2"} in groups
        assert {"b1", "b2"} in groups

    def test_reverse_strand_read_joins_chain(self, rng):
        genome = random_dna(rng, 300)
        reads = {"f": genome[:180], "r": reverse_complement(genome[120:])}
        layouts, _ = build_layouts(reads)
        assert len(layouts) == 1
        assert set(layouts[0].read_ids) == {"f", "r"}
        flips = {r.read_id: r.flipped for r in layouts[0].reads}
        assert flips["f"] != flips["r"]
