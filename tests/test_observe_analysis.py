"""Makespan attribution and the ``repro-report`` CLI.

The core invariant (pinned by a hypothesis property): the attribution
buckets tile the realized critical path, so they **sum exactly to the
makespan** for any trace — retries, failed tails, held delays,
overlapping timelines, all of it.
"""

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.dagman.dag import Dag, DagJob
from repro.dagman.events import JobAttempt, JobStatus, WorkflowTrace
from repro.observe.analysis import (
    BUCKETS,
    MakespanAttribution,
    aggregate_components,
    attribute_makespan,
)
from repro.observe.report import (
    build_report,
    check_thresholds,
    compare_reports,
    load_report,
    main,
    parse_fail_on,
    render_compare_markdown,
    render_markdown,
)


def _attempt(
    job="j1",
    transformation="run_cap3",
    attempt=1,
    submit=0.0,
    setup=10.0,
    start=15.0,
    end=100.0,
    status=JobStatus.SUCCEEDED,
    site="sandhills",
    machine="m0",
):
    return JobAttempt(
        job_name=job,
        transformation=transformation,
        site=site,
        machine=machine,
        attempt=attempt,
        submit_time=submit,
        setup_start=setup,
        exec_start=start,
        exec_end=end,
        status=status,
    )


def _sums_to_makespan(at: MakespanAttribution) -> None:
    assert sum(at.buckets.values()) == pytest.approx(
        at.makespan_s, abs=1e-6
    )


# -- edge cases ------------------------------------------------------------


def test_empty_trace():
    at = attribute_makespan(WorkflowTrace())
    assert at.makespan_s == 0.0
    assert at.buckets == {b: 0.0 for b in BUCKETS}
    assert at.segments == []
    assert at.path_jobs == []
    _sums_to_makespan(at)


def test_single_job_decomposition():
    trace = WorkflowTrace([_attempt()])
    at = attribute_makespan(trace)
    assert at.makespan_s == 100.0
    assert at.buckets["waiting"] == pytest.approx(10.0)
    assert at.buckets["setup"] == pytest.approx(5.0)
    assert at.buckets["exec"] == pytest.approx(85.0)
    assert at.buckets["retry_lost"] == 0.0
    assert at.buckets["idle"] == 0.0
    assert at.path_jobs == ["j1"]
    _sums_to_makespan(at)


def test_retry_chain_charges_lost_time():
    # Attempt 1 fails at t=50; attempt 2 is submitted at t=60 and wins.
    trace = WorkflowTrace([
        _attempt(attempt=1, submit=0, setup=5, start=5, end=50,
                 status=JobStatus.FAILED),
        _attempt(attempt=2, submit=60, setup=70, start=75, end=200),
    ])
    at = attribute_makespan(trace)
    assert at.makespan_s == pytest.approx(200.0)
    # Everything before the final attempt's submit is retry-lost.
    assert at.buckets["retry_lost"] == pytest.approx(60.0)
    assert at.buckets["waiting"] == pytest.approx(10.0)
    assert at.buckets["setup"] == pytest.approx(5.0)
    assert at.buckets["exec"] == pytest.approx(125.0)
    _sums_to_makespan(at)


def test_all_failed_trace_still_reaches_end():
    # A rescue-round story where nothing ever succeeds: the path must
    # still extend to the last completion so the sum invariant holds.
    trace = WorkflowTrace([
        _attempt(job="a", attempt=1, submit=0, setup=1, start=2, end=30,
                 status=JobStatus.FAILED),
        _attempt(job="a", attempt=2, submit=35, setup=36, start=38, end=80,
                 status=JobStatus.EVICTED),
        _attempt(job="b", attempt=1, submit=85, setup=90, start=95, end=120,
                 status=JobStatus.TIMEOUT),
    ])
    at = attribute_makespan(trace)
    assert at.makespan_s == pytest.approx(120.0)
    assert at.end_s == 120.0
    assert at.path_jobs[-1] == "b"
    _sums_to_makespan(at)


def test_dag_guided_path_follows_dependencies():
    dag = Dag()
    for name in ("a", "b", "c"):
        dag.add_job(DagJob(name=name, transformation="t", runtime=1.0))
    dag.add_edge("a", "c")
    dag.add_edge("b", "c")
    trace = WorkflowTrace([
        _attempt(job="a", submit=0, setup=0, start=0, end=40),
        _attempt(job="b", submit=0, setup=0, start=0, end=60),
        _attempt(job="c", submit=60, setup=62, start=65, end=100),
    ])
    at = attribute_makespan(trace, dag)
    assert at.method == "critical-path"
    # b (finished later) gated c, so a is off the path.
    assert at.path_jobs == ["b", "c"]
    _sums_to_makespan(at)


def test_what_if_and_ranking():
    trace = WorkflowTrace([_attempt()])
    at = attribute_makespan(trace)
    assert at.what_if_free("exec") == pytest.approx(15.0)
    assert at.what_if()["waiting"] == pytest.approx(90.0)
    assert at.ranked()[0][0] == "exec"
    assert at.share("exec") == pytest.approx(0.85)
    with pytest.raises(KeyError):
        at.what_if_free("nonsense")


def test_by_transformation_and_site_partition_the_path():
    trace = WorkflowTrace([
        _attempt(job="a", transformation="t1", site="s1",
                 submit=0, setup=2, start=4, end=50),
        _attempt(job="b", transformation="t2", site="s2",
                 submit=50, setup=55, start=60, end=90),
    ])
    at = attribute_makespan(trace)
    per_t = at.by_transformation()
    per_s = at.by_site()
    attributed = sum(sum(row.values()) for row in per_t.values())
    assert attributed + at.buckets["idle"] == pytest.approx(at.makespan_s)
    assert set(per_t) == {"t1", "t2"}
    assert set(per_s) == {"s1", "s2"}


def test_aggregate_components_counts_machine_time():
    trace = WorkflowTrace([
        _attempt(attempt=1, submit=0, setup=5, start=5, end=50,
                 status=JobStatus.FAILED),
        _attempt(attempt=2, submit=60, setup=70, start=75, end=200),
    ])
    agg = aggregate_components(trace)
    assert agg["waiting"] == pytest.approx(5 + 10)
    assert agg["setup"] == pytest.approx(0 + 5)
    assert agg["exec"] == pytest.approx(45 + 125)
    assert agg["retry_lost"] == pytest.approx(50.0)


# -- the sum invariant, property-based -------------------------------------


@st.composite
def random_trace(draw):
    n_jobs = draw(st.integers(min_value=1, max_value=8))
    attempts = []
    for j in range(n_jobs):
        n_attempts = draw(st.integers(min_value=1, max_value=3))
        t = draw(st.floats(min_value=0, max_value=50))
        for k in range(1, n_attempts + 1):
            waits = [
                draw(st.floats(min_value=0, max_value=30))
                for _ in range(3)
            ]
            submit = t
            setup = submit + waits[0]
            start = setup + waits[1]
            end = start + waits[2]
            failed = k < n_attempts or draw(st.booleans())
            attempts.append(JobAttempt(
                job_name=f"j{j}",
                transformation="t",
                site="s",
                machine=f"m{k}",
                attempt=k,
                submit_time=submit,
                setup_start=setup,
                exec_start=start,
                exec_end=end,
                status=JobStatus.FAILED if failed else JobStatus.SUCCEEDED,
            ))
            t = end + draw(st.floats(min_value=0, max_value=20))
    return WorkflowTrace(attempts)


@given(random_trace())
@settings(max_examples=150, deadline=None)
def test_property_buckets_sum_to_makespan(trace):
    at = attribute_makespan(trace)
    _sums_to_makespan(at)
    assert all(v >= -1e-9 for v in at.buckets.values())
    # Segments tile [start, end] with no gaps or overlaps.
    cursor = at.start_s
    for seg in at.segments:
        assert seg.start == pytest.approx(cursor, abs=1e-6)
        assert seg.end >= seg.start
        cursor = seg.end
    if at.segments:
        assert cursor == pytest.approx(at.end_s, abs=1e-6)


# -- report build / compare / CLI ------------------------------------------


def _two_run_dirs(tmp_path):
    from repro.wms.monitor import write_trace

    fast = tmp_path / "fast"
    slow = tmp_path / "slow"
    for d in (fast, slow):
        d.mkdir()
    write_trace(fast / "trace.jsonl", WorkflowTrace([_attempt(end=100.0)]))
    write_trace(slow / "trace.jsonl", WorkflowTrace([
        _attempt(attempt=1, submit=0, setup=5, start=5, end=80,
                 status=JobStatus.FAILED),
        _attempt(attempt=2, submit=90, setup=120, start=140, end=400),
    ]))
    return fast, slow


def test_build_and_render_report():
    trace = WorkflowTrace([_attempt()])
    report = build_report(trace, label="unit")
    assert report["schema"] == "repro-report/1"
    assert sum(report["attribution"].values()) == pytest.approx(
        report["makespan_s"]
    )
    md = render_markdown(report)
    assert "Makespan attribution — unit" in md
    assert "exact tiling" in md


def test_load_report_roundtrip_via_saved_json(tmp_path):
    trace = WorkflowTrace([_attempt()])
    report = build_report(trace, label="unit")
    path = tmp_path / "report.json"
    path.write_text(json.dumps(report))
    assert load_report(path) == report
    bogus = tmp_path / "bogus.json"
    bogus.write_text(json.dumps({"schema": "other"}))
    with pytest.raises(ValueError):
        load_report(bogus)


def test_parse_fail_on_specs():
    th = parse_fail_on(["makespan=5%", "retries=3", "exec=120s"])
    assert th["makespan"] == ("pct", 5.0)
    assert th["retries"] == ("abs", 3.0)
    assert th["exec"] == ("abs", 120.0)
    for bad in ("makespan", "nope=5%", "makespan=abc"):
        with pytest.raises(ValueError):
            parse_fail_on([bad])


def test_compare_and_thresholds(tmp_path):
    fast, slow = _two_run_dirs(tmp_path)
    comparison = compare_reports(load_report(fast), load_report(slow))
    row = comparison["metrics"]["makespan"]
    assert row["base"] == pytest.approx(100.0)
    assert row["new"] == pytest.approx(400.0)
    violations = check_thresholds(comparison, parse_fail_on(["makespan=5%"]))
    assert len(violations) == 1 and "makespan" in violations[0]
    # The improvement direction never trips the gate.
    back = compare_reports(load_report(slow), load_report(fast))
    assert check_thresholds(back, parse_fail_on(["makespan=5%"])) == []
    md = render_compare_markdown(comparison, violations=violations)
    assert "REGRESSIONS" in md


def test_cli_analyze_and_compare_exit_codes(tmp_path, capsys):
    fast, slow = _two_run_dirs(tmp_path)
    out_json = tmp_path / "report.json"
    assert main([
        "analyze", str(fast), "--label", "fast",
        "--json", str(out_json), "--quiet",
    ]) == 0
    saved = json.loads(out_json.read_text())
    assert saved["label"] == "fast"

    # Same run against itself: clean pass.
    assert main([
        "compare", str(out_json), str(out_json),
        "--fail-on", "makespan=5%", "--quiet",
    ]) == 0
    # Regressed run: gate trips (exit 1).
    assert main([
        "compare", str(fast), str(slow),
        "--fail-on", "makespan=5%", "--quiet",
    ]) == 1
    # Usage errors: exit 2.
    assert main(["analyze", str(tmp_path / "missing")]) == 2
    assert main([
        "compare", str(fast), str(slow), "--fail-on", "bogus=1%",
    ]) == 2
    capsys.readouterr()


def test_cli_compare_paper_platforms_gates(tmp_path):
    """The acceptance scenario: Sandhills baseline vs an OSG run must
    trip a 5 % makespan gate (the paper's Fig. 4 gap is ~24 %)."""
    from repro.core.workflow_factory import simulate_paper_run

    reports = {}
    for platform in ("sandhills", "osg"):
        result, planned = simulate_paper_run(50, platform, seed=0)
        reports[platform] = build_report(
            result.trace, dag=planned.dag, label=platform
        )
        path = tmp_path / f"{platform}.json"
        path.write_text(json.dumps(reports[platform]))
    comparison = compare_reports(reports["sandhills"], reports["osg"])
    assert comparison["metrics"]["makespan"]["delta"] > 0
    assert main([
        "compare",
        str(tmp_path / "sandhills.json"),
        str(tmp_path / "osg.json"),
        "--fail-on", "makespan=5%", "--quiet",
    ]) == 1
