"""Tests for the file-level workflow tasks, including parity between the
serial driver and the decomposed task pipeline (the workflow's whole
correctness claim: same output, different execution structure)."""

import pytest

from repro.bio.fasta import read_fasta, write_fasta
from repro.blast.tabular import read_tabular, write_tabular
from repro.core.blast2cap3 import blast2cap3_serial
from repro.core.tasks import (
    TASK_REGISTRY,
    concat_final,
    create_alignment_list,
    create_transcript_list,
    merge_joined,
    merge_unjoined,
    run_cap3,
    split_alignments,
)
from repro.datagen.transcripts import TranscriptomeSpec
from repro.datagen.workload import generate_blast2cap3_workload


@pytest.fixture(scope="module")
def workload():
    return generate_blast2cap3_workload(
        n_proteins=10,
        spec=TranscriptomeSpec(
            mean_fragments_per_gene=3.0, noise_transcripts=3, error_rate=0.002
        ),
        seed=77,
    )


@pytest.fixture()
def staged(tmp_path, workload):
    transcripts = tmp_path / "transcripts.fasta"
    alignments = tmp_path / "alignments.out"
    write_fasta(transcripts, workload.transcripts)
    write_tabular(alignments, workload.hits)
    return tmp_path, transcripts, alignments


def run_pipeline(tmp_path, transcripts, alignments, n):
    """Execute the Fig. 2 DAG's tasks in dependency order, by hand."""
    tdict = tmp_path / "transcripts_dict.txt"
    alist = tmp_path / "alignments.list"
    create_transcript_list(transcripts, tdict)
    create_alignment_list(alignments, alist)

    parts = [tmp_path / f"protein_{i + 1}.txt" for i in range(n)]
    split_alignments(alignments, parts)

    joined_parts, merged_parts = [], []
    for i, part in enumerate(parts):
        joined = tmp_path / f"joined_{i + 1}.fasta"
        merged = tmp_path / f"merged_{i + 1}.txt"
        run_cap3(tdict, part, joined, merged)
        joined_parts.append(joined)
        merged_parts.append(merged)

    joined_all = tmp_path / "joined.fasta"
    unjoined_all = tmp_path / "unjoined.fasta"
    final = tmp_path / "merged_transcriptome.fasta"
    merge_joined(joined_parts, joined_all)
    merge_unjoined(tdict, merged_parts, unjoined_all)
    concat_final(joined_all, unjoined_all, final)
    return final


class TestIndividualTasks:
    def test_create_transcript_list_roundtrips(self, staged, workload):
        tmp_path, transcripts, _ = staged
        out = tmp_path / "transcripts_dict.txt"
        n = create_transcript_list(transcripts, out)
        assert n == len(workload.transcripts)
        assert {r.id for r in read_fasta(out)} == {
            t.id for t in workload.transcripts
        }

    def test_create_alignment_list_unique_ids(self, staged, workload):
        tmp_path, _, alignments = staged
        out = tmp_path / "alignments.list"
        n = create_alignment_list(alignments, out)
        ids = out.read_text().split()
        assert len(ids) == n == len(set(ids))
        assert set(ids) == {h.qseqid for h in workload.hits}

    def test_split_produces_n_valid_tabular_files(self, staged):
        tmp_path, _, alignments = staged
        parts = [tmp_path / f"p{i}.txt" for i in range(4)]
        counts = split_alignments(alignments, parts)
        assert len(counts) == 4
        for part in parts:
            list(read_tabular(part))  # must parse cleanly

    def test_split_keeps_clusters_whole(self, staged):
        tmp_path, _, alignments = staged
        parts = [tmp_path / f"p{i}.txt" for i in range(5)]
        split_alignments(alignments, parts)
        protein_to_part = {}
        for i, part in enumerate(parts):
            for hit in read_tabular(part):
                previous = protein_to_part.setdefault(hit.sseqid, i)
                assert previous == i, "cluster split across partitions"

    def test_run_cap3_merges_something(self, staged):
        tmp_path, transcripts, alignments = staged
        tdict = tmp_path / "tdict.txt"
        create_transcript_list(transcripts, tdict)
        part = tmp_path / "p0.txt"
        split_alignments(alignments, [part])  # everything in one part
        joined = tmp_path / "joined.fasta"
        merged = tmp_path / "merged.txt"
        n_contigs, n_merged = run_cap3(tdict, part, joined, merged)
        assert n_contigs > 0
        assert n_merged >= 2 * n_contigs  # each contig absorbed >= 2 reads

    def test_registry_complete(self):
        assert set(TASK_REGISTRY) == {
            "create_transcript_list",
            "create_alignment_list",
            "split_alignments",
            "run_cap3",
            "merge_joined",
            "merge_unjoined",
            "concat_final",
        }


class TestPipelineParity:
    @pytest.mark.parametrize("n", [1, 3, 7])
    def test_workflow_output_matches_serial(self, staged, workload, n):
        """The decomposed pipeline must produce the same final assembly
        as the serial script, for any partition count n — this is the
        invariant that makes the paper's parallelisation valid."""
        tmp_path, transcripts, alignments = staged
        final = run_pipeline(tmp_path, transcripts, alignments, n)
        workflow_records = {
            (r.id, r.seq) for r in read_fasta(final)
        }
        serial = blast2cap3_serial(workload.transcripts, workload.hits)
        serial_records = {(r.id, r.seq) for r in serial.output_records}
        assert workflow_records == serial_records

    def test_output_count_independent_of_n(self, staged):
        tmp_path, transcripts, alignments = staged
        counts = []
        for n in (2, 5):
            sub = tmp_path / f"n{n}"
            sub.mkdir()
            final = run_pipeline(sub, transcripts, alignments, n)
            counts.append(sum(1 for _ in read_fasta(final)))
        assert counts[0] == counts[1]
