"""Smoke tests: the shipped examples must run end to end.

Each example is executed in a subprocess (its own interpreter, like a
user would run it) and sanity-checked by output markers. The slowest
example (the real BLASTX search) is excluded here and covered by the
equivalent code paths in test_workflow_factory / test_datagen.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"


def run_example(name: str, timeout: int = 240) -> str:
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert proc.returncode == 0, (
        f"{name} exited {proc.returncode}:\n{proc.stderr[-2000:]}"
    )
    return proc.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "blast2cap3 summary" in out
        assert "reduction" in out

    def test_transcriptome_pipeline(self):
        out = run_example("transcriptome_pipeline.py")
        assert "pipeline stages" in out
        assert "N50" in out
        assert "reference recovered" in out

    def test_workflow_observability(self):
        out = run_example("workflow_observability.py")
        assert "jobs done (100.0%)" in out
        assert "legend:" in out
        assert "provenance of" in out
        assert "critical path" in out

    def test_rescue_and_retry(self):
        out = run_example("rescue_and_retry.py")
        assert "first submission" in out
        # Either path is valid output (failure + rescue, or lucky seed).
        assert "rescue DAG written" in out or "unlucky seed" in out

    @pytest.mark.slow
    def test_campus_vs_osg(self):
        out = run_example("campus_vs_osg.py", timeout=400)
        assert "Fig. 4" in out
        assert "Fig. 5" in out
        assert "fig2_sandhills.dot" in out

    @pytest.mark.slow
    def test_protein_guided_assembly(self):
        out = run_example("protein_guided_assembly.py", timeout=500)
        assert "parity: workflow output identical" in out
