"""Tests for the kickstart wrapper and the local thread-pool backend."""

import threading
import time

import pytest

from repro.dagman.dag import Dag, DagJob
from repro.dagman.scheduler import DagmanScheduler, NodeState
from repro.execution.kickstart import KickstartRecord, kickstart
from repro.execution.local import LocalEnvironment


class TestKickstart:
    def test_success_captures_result(self):
        record = kickstart(lambda: 42)
        assert record.success
        assert record.result == 42
        assert record.error is None
        assert record.duration_s >= 0

    def test_failure_captures_traceback(self):
        def boom():
            raise RuntimeError("cap3 exploded")

        record = kickstart(boom)
        assert not record.success
        assert "cap3 exploded" in record.error
        assert "RuntimeError" in record.error

    def test_duration_measured(self):
        record = kickstart(lambda: time.sleep(0.05))
        assert record.duration_s >= 0.04

    def test_record_validation(self):
        with pytest.raises(ValueError):
            KickstartRecord(duration_s=-1, success=True)
        with pytest.raises(ValueError):
            KickstartRecord(duration_s=1, success=True, error="x")


class TestLocalEnvironment:
    def test_executes_real_payloads(self):
        results = []
        dag = Dag()
        dag.add_job(
            DagJob(
                name="hello",
                transformation="t",
                payload=lambda: results.append("ran"),
            )
        )
        with LocalEnvironment(max_workers=2) as env:
            outcome = DagmanScheduler(dag, env).run()
        assert outcome.success
        assert results == ["ran"]

    def test_dependencies_sequenced_across_threads(self):
        order = []
        lock = threading.Lock()

        def step(name):
            def payload():
                with lock:
                    order.append(name)

            return payload

        dag = Dag()
        for n in ("a", "b", "c"):
            dag.add_job(DagJob(name=n, transformation="t", payload=step(n)))
        dag.add_edge("a", "b")
        dag.add_edge("b", "c")
        with LocalEnvironment(max_workers=4) as env:
            assert DagmanScheduler(dag, env).run().success
        assert order == ["a", "b", "c"]

    def test_parallel_jobs_overlap(self):
        barrier = threading.Barrier(2, timeout=5)

        def meet():
            barrier.wait()  # deadlocks unless both run concurrently

        dag = Dag()
        for n in ("x", "y"):
            dag.add_job(DagJob(name=n, transformation="t", payload=meet))
        with LocalEnvironment(max_workers=2) as env:
            assert DagmanScheduler(dag, env).run().success

    def test_failing_payload_fails_job(self):
        def boom():
            raise ValueError("bad input")

        dag = Dag()
        dag.add_job(DagJob(name="bad", transformation="t", payload=boom))
        dag.add_job(DagJob(name="child", transformation="t", payload=lambda: None))
        dag.add_edge("bad", "child")
        with LocalEnvironment() as env:
            result = DagmanScheduler(dag, env).run()
        assert not result.success
        assert result.states["bad"] is NodeState.FAILED
        assert result.states["child"] is NodeState.UNRUNNABLE
        assert "bad input" in result.trace.for_job("bad")[0].error

    def test_retry_reruns_payload(self):
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] == 1:
                raise RuntimeError("transient")

        dag = Dag()
        dag.add_job(
            DagJob(name="flaky", transformation="t", payload=flaky, retries=2)
        )
        with LocalEnvironment() as env:
            result = DagmanScheduler(dag, env).run()
        assert result.success
        assert calls["n"] == 2
        assert result.trace.retry_count == 1

    def test_payload_required(self):
        dag = Dag()
        dag.add_job(DagJob(name="modelled", transformation="t", runtime=5))
        with LocalEnvironment() as env:
            scheduler = DagmanScheduler(dag, env)
            with pytest.raises(ValueError, match="no payload"):
                scheduler.start()

    def test_trace_timestamps_sane(self):
        dag = Dag()
        dag.add_job(
            DagJob(
                name="sleepy",
                transformation="t",
                payload=lambda: time.sleep(0.05),
            )
        )
        with LocalEnvironment() as env:
            result = DagmanScheduler(dag, env).run()
        (a,) = result.trace.attempts
        assert a.kickstart_time >= 0.04
        assert a.waiting_time >= 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            LocalEnvironment(max_workers=0)
