"""Tests for per-site statistics, queue snapshots, and the plots CLI."""

import pytest

from repro.core.workflow_factory import simulate_paper_run
from repro.dagman.dag import Dag, DagJob
from repro.dagman.events import JobAttempt, JobStatus, WorkflowTrace
from repro.dagman.scheduler import DagmanScheduler
from repro.sim.cluster import CampusCluster
from repro.sim.engine import Simulator
from repro.sim.rng import RngStreams
from repro.wms.cli import main_plan, main_plots, main_run
from repro.wms.statistics import per_site


def attempt(name, site, status=JobStatus.SUCCEEDED, dur=100.0, attempt_no=1):
    return JobAttempt(
        job_name=name, transformation="t", site=site, machine=f"{site}-m",
        attempt=attempt_no, submit_time=0.0, setup_start=0.0,
        exec_start=0.0, exec_end=dur, status=status,
    )


class TestPerSite:
    def test_groups_by_site(self):
        trace = WorkflowTrace()
        trace.add(attempt("a", "fnal", dur=100))
        trace.add(attempt("b", "fnal", dur=300))
        trace.add(attempt("c", "ucsd", dur=50))
        trace.add(attempt("d", "ucsd", status=JobStatus.EVICTED, dur=10))
        stats = {s.site: s for s in per_site(trace)}
        assert stats["fnal"].jobs == 2
        assert stats["fnal"].mean_kickstart == 200.0
        assert stats["fnal"].failures == 0
        assert stats["ucsd"].jobs == 1
        assert stats["ucsd"].failures == 1

    def test_failure_only_site(self):
        trace = WorkflowTrace()
        trace.add(attempt("a", "flaky", status=JobStatus.FAILED))
        (s,) = per_site(trace)
        assert s.jobs == 0
        assert s.failures == 1
        assert s.mean_kickstart == 0.0

    def test_osg_run_spreads_over_sites(self):
        result, _ = simulate_paper_run(100, "osg", seed=1)
        stats = per_site(result.trace)
        assert len(stats) >= 3  # multiple VO sites contributed
        assert sum(s.jobs for s in stats) >= 100

    def test_sandhills_is_single_site(self):
        result, _ = simulate_paper_run(20, "sandhills", seed=1)
        stats = per_site(result.trace)
        assert [s.site for s in stats] == ["sandhills"]


class TestQueueStatus:
    def test_campus_queue_counts(self):
        from repro.sim.cluster import CampusClusterConfig

        sim = Simulator()
        cluster = CampusCluster(
            sim, CampusClusterConfig(group_slots=2),
            streams=RngStreams(seed=0),
        )
        dag = Dag()
        for i in range(5):
            dag.add_job(DagJob(name=f"j{i}", transformation="t", runtime=100))
        scheduler = DagmanScheduler(dag, cluster)
        scheduler.start()
        status = cluster.queue_status()
        assert status["running"] == 2
        assert status["idle"] == 3
        cluster.run_until_complete()
        assert cluster.queue_status() == {"idle": 0, "running": 0}

    def test_grid_queue_drains(self):
        from repro.sim.grid import OpportunisticGrid

        sim = Simulator()
        grid = OpportunisticGrid(sim, streams=RngStreams(seed=0))
        dag = Dag()
        for i in range(10):
            dag.add_job(
                DagJob(name=f"j{i}", transformation="t", runtime=50,
                       retries=10)
            )
        DagmanScheduler(dag, grid).run()
        assert grid.queue_status() == {"idle": 0, "running": 0}

    def test_cloud_queue_reflects_capacity(self):
        from repro.sim.cloud import CloudConfig, CloudPlatform

        sim = Simulator()
        cloud = CloudPlatform(
            sim, CloudConfig(max_instances=2), streams=RngStreams(seed=0)
        )
        dag = Dag()
        for i in range(6):
            dag.add_job(DagJob(name=f"j{i}", transformation="t", runtime=100))
        scheduler = DagmanScheduler(dag, cloud)
        scheduler.start()
        assert cloud.queue_status()["idle"] == 4  # over the 2-VM cap
        cloud.run_until_complete()
        assert cloud.queue_status() == {"idle": 0, "running": 0}


class TestPlotsCli:
    def test_plots_renders_gantt_and_utilization(self, tmp_path, capsys):
        d = tmp_path / "submit"
        assert main_plan(["--submit-dir", str(d), "-n", "10"]) == 0
        assert main_run(["--submit-dir", str(d), "--seed", "1"]) == 0
        capsys.readouterr()
        assert main_plots(["--submit-dir", str(d), "--max-rows", "12"]) == 0
        out = capsys.readouterr().out
        assert "legend:" in out
        assert "running jobs over time" in out
        assert "run_cap3" in out

    def test_plots_without_trace_exits(self, tmp_path):
        d = tmp_path / "fresh"
        main_plan(["--submit-dir", str(d), "-n", "5"])
        with pytest.raises(SystemExit):
            main_plots(["--submit-dir", str(d)])
