"""The determinism audit: the simulators really are replayable.

The acceptance bar from the issue: the audit passes on both the
Sandhills and OSG simulators under two ``PYTHONHASHSEED`` values. The
in-process perturbations (repeat, global-random, decoy-streams) run on
both platforms; the subprocess hash-seed leg is exercised once per
platform with two seeds. A fake runner proves DET001 actually fires on
divergence.
"""

from __future__ import annotations

import pytest

from repro.lint import DeterminismOptions, lint
from repro.lint.determinism import (
    Divergence,
    audit_determinism,
    run_fingerprint,
    trace_fingerprint,
)
from repro.observe.events import EventKind, RunEvent
from repro.wms.dax import ADag, AbstractJob, File


def _tiny_adag():
    adag = ADag(name="tiny")
    j = AbstractJob(id="a", transformation="t")
    j.add_input(File("in.txt"))
    j.add_output(File("out.txt"))
    adag.add_job(j)
    return adag


class TestTraceFingerprint:
    def test_stable_and_order_sensitive(self):
        events = [
            RunEvent(kind=EventKind.SUBMIT, time=0.0, job_name="a"),
            RunEvent(kind=EventKind.SUBMIT, time=1.5, job_name="b"),
        ]
        assert trace_fingerprint(events) == trace_fingerprint(list(events))
        assert trace_fingerprint(events) != trace_fingerprint(
            events[::-1]
        )

    def test_sensitive_to_timing(self):
        a = [RunEvent(kind=EventKind.SUBMIT, time=0.0, job_name="a")]
        b = [RunEvent(kind=EventKind.SUBMIT, time=0.1, job_name="a")]
        assert trace_fingerprint(a) != trace_fingerprint(b)


class TestInProcessAudit:
    @pytest.mark.parametrize("platform", ["sandhills", "osg"])
    def test_repeat_is_bit_identical(self, platform):
        first = run_fingerprint(platform, n=3, seed=11)
        second = run_fingerprint(platform, n=3, seed=11)
        assert first == second

    def test_different_seeds_differ_on_osg(self):
        # sanity: the fingerprint actually captures the stochastic run
        assert run_fingerprint("osg", n=3, seed=1) != run_fingerprint(
            "osg", n=3, seed=2
        )

    def test_full_in_process_audit_passes_both_platforms(self):
        opts = DeterminismOptions(
            n=3, platforms=("sandhills", "osg"), seed=11
        )
        assert audit_determinism(opts) == []


class TestHashSeedAudit:
    def test_two_hash_seeds_reproduce_both_platforms(self):
        # the issue's acceptance bar; subprocesses, so deliberately small
        opts = DeterminismOptions(
            n=2,
            platforms=("sandhills", "osg"),
            seed=11,
            perturbations=(),
            hash_seeds=(0, 1),
        )
        assert audit_determinism(opts) == []


class TestDet001Rule:
    def test_divergence_fires_det001(self):
        opts = DeterminismOptions(
            platforms=("sandhills",),
            runner=lambda platform, perturbation, _o: perturbation,
        )
        report = lint(_tiny_adag(), determinism=opts)
        findings = report.by_rule("DET001")
        assert len(findings) == len(opts.perturbations)
        assert not report.ok
        assert findings[0].location == "platform:sandhills"

    def test_reproducible_runner_is_clean(self):
        opts = DeterminismOptions(
            platforms=("sandhills",),
            runner=lambda *_: "constant",
        )
        report = lint(_tiny_adag(), determinism=opts)
        assert not report.by_rule("DET001")
        assert "DET001" in report.checked_rules

    def test_audit_skipped_without_optin(self):
        report = lint(_tiny_adag())
        assert "DET001" in report.skipped_rules

    def test_divergence_describe(self):
        d = Divergence("osg", "repeat", "a" * 64, "b" * 64)
        text = d.describe()
        assert "osg" in text and "repeat" in text
        assert "a" * 12 in text and "b" * 12 in text


class TestCliEntry:
    def test_module_main_passes_without_subprocess_leg(self, capsys):
        from repro.lint.determinism import main

        rc = main(
            ["-n", "2", "--platforms", "sandhills", "--hash-seeds"]
        )
        assert rc == 0
        assert "reproduced" in capsys.readouterr().out


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(pytest.main([__file__, "-q"]))
