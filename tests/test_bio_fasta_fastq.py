"""Tests for FASTA/FASTQ I/O round-trips and error handling."""

import io

import pytest
from hypothesis import given, strategies as st

from repro.bio.fasta import FastaRecord, fasta_index, read_fasta, write_fasta
from repro.bio.fastq import (
    FastqRecord,
    phred_to_quality,
    quality_to_phred,
    read_fastq,
    write_fastq,
)

ids = st.text(
    alphabet=st.characters(whitelist_categories=("Ll", "Lu", "Nd")),
    min_size=1,
    max_size=12,
)
dna = st.text(alphabet="ACGTN", max_size=300)


class TestFastaRecord:
    def test_basic(self):
        r = FastaRecord(id="t1", seq="ACGT", description="t1 wheat contig")
        assert len(r) == 4

    def test_empty_id_rejected(self):
        with pytest.raises(ValueError):
            FastaRecord(id="", seq="ACGT")

    def test_whitespace_id_rejected(self):
        with pytest.raises(ValueError):
            FastaRecord(id="a b", seq="ACGT")

    def test_format_wraps_long_sequences(self):
        r = FastaRecord(id="t", seq="A" * 150)
        lines = r.format().splitlines()
        assert lines[0] == ">t"
        assert len(lines[1]) == 70
        assert "".join(lines[1:]) == "A" * 150


class TestFastaIO:
    def test_read_simple(self):
        text = ">t1 first\nACGT\nACGT\n>t2\nGGGG\n"
        records = list(read_fasta(io.StringIO(text)))
        assert [r.id for r in records] == ["t1", "t2"]
        assert records[0].seq == "ACGTACGT"
        assert records[0].description == "t1 first"

    def test_blank_lines_ignored(self):
        text = "\n>t1\nAC\n\nGT\n\n"
        (record,) = read_fasta(io.StringIO(text))
        assert record.seq == "ACGT"

    def test_body_before_header_rejected(self):
        with pytest.raises(ValueError, match="before any FASTA header"):
            list(read_fasta(io.StringIO("ACGT\n>t1\nAC\n")))

    def test_empty_header_rejected(self):
        with pytest.raises(ValueError, match="empty FASTA header"):
            list(read_fasta(io.StringIO(">\nACGT\n")))

    def test_empty_file(self):
        assert list(read_fasta(io.StringIO(""))) == []

    def test_write_to_path_atomic(self, tmp_path):
        path = tmp_path / "out.fasta"
        n = write_fasta(path, [FastaRecord(id="a", seq="ACGT")])
        assert n == 1
        assert path.read_text().startswith(">a\n")

    @given(st.lists(st.tuples(ids, dna), max_size=20, unique_by=lambda t: t[0]))
    def test_roundtrip(self, items):
        records = [FastaRecord(id=i, seq=s) for i, s in items]
        buf = io.StringIO()
        write_fasta(buf, records)
        buf.seek(0)
        back = list(read_fasta(buf))
        assert [(r.id, r.seq) for r in back] == [(r.id, r.seq) for r in records]

    def test_index(self):
        text = ">a\nAC\n>b\nGT\n"
        idx = fasta_index(io.StringIO(text))
        assert set(idx) == {"a", "b"}
        assert idx["b"].seq == "GT"

    def test_index_duplicate_rejected(self):
        text = ">a\nAC\n>a\nGT\n"
        with pytest.raises(ValueError, match="duplicate"):
            fasta_index(io.StringIO(text))

    def test_file_roundtrip(self, tmp_path):
        path = tmp_path / "t.fasta"
        records = [FastaRecord(id=f"t{i}", seq="ACGT" * i) for i in range(1, 5)]
        write_fasta(path, records)
        assert [r.id for r in read_fasta(path)] == ["t1", "t2", "t3", "t4"]


class TestPhred:
    def test_roundtrip_known(self):
        assert phred_to_quality([0, 40]) == "!I"
        assert quality_to_phred("!I") == [0, 40]

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            phred_to_quality([94])
        with pytest.raises(ValueError):
            quality_to_phred(" ")  # ord 32 < offset 33

    @given(st.lists(st.integers(min_value=0, max_value=93), max_size=100))
    def test_roundtrip(self, scores):
        assert quality_to_phred(phred_to_quality(scores)) == scores


class TestFastqIO:
    def test_record_validates_lengths(self):
        with pytest.raises(ValueError, match="mismatch"):
            FastqRecord(id="r", seq="ACGT", quality="II")

    def test_mean_quality(self):
        r = FastqRecord(id="r", seq="AC", quality=phred_to_quality([10, 30]))
        assert r.mean_quality() == 20.0

    def test_read_simple(self):
        text = "@r1 lane1\nACGT\n+\nIIII\n@r2\nGG\n+\nII\n"
        records = list(read_fastq(io.StringIO(text)))
        assert [r.id for r in records] == ["r1", "r2"]
        assert records[0].description == "r1 lane1"

    def test_bad_header(self):
        with pytest.raises(ValueError, match="expected '@'"):
            list(read_fastq(io.StringIO(">r1\nAC\n+\nII\n")))

    def test_bad_separator(self):
        with pytest.raises(ValueError, match="expected '\\+'"):
            list(read_fastq(io.StringIO("@r1\nAC\nII\nII\n")))

    def test_roundtrip_path(self, tmp_path):
        path = tmp_path / "r.fastq"
        records = [
            FastqRecord(id=f"r{i}", seq="ACGT", quality="IIII") for i in range(3)
        ]
        assert write_fastq(path, records) == 3
        back = list(read_fastq(path))
        assert [(r.id, r.seq, r.quality) for r in back] == [
            (r.id, r.seq, r.quality) for r in records
        ]
