"""Regression tests for three timing-accounting bugs.

1. ``Simulator.run(until=...)`` left the clock short of ``until`` when
   the queue drained early, so utilization windows and samplers saw a
   truncated timeline.
2. Cancelled events lingered in the heap, making ``pending`` O(n) and
   (worse) *wrong* as a "work remaining" signal for heavy cancellers.
3. ``OpportunisticGrid`` recorded ``peak_busy`` at match time, counting
   the opportunistic-wait window — during which nothing executes — as
   busy, inflating utilization. The peak is now recorded at arrival.
4. ``summarize()`` derived ``total_jobs`` from attempt records alone,
   so descendants of a hard-failed job silently vanished from the
   report. Plan information (DAG or expected count) now yields planned
   vs attempted vs unrunnable accounting.
5. The Chrome-trace exporter sorted a job's retry chain by attempt
   number alone, but rescue rounds restart numbering at 1 — in a trace
   merged across a ``--resume`` boundary the chain zig-zagged backwards
   in time and the retry flow arrows straddling the boundary were drawn
   wrong (or dropped by Perfetto as acausal). Chains now sort by
   ``(submit_time, attempt)``.
"""

import pytest

from repro.dagman.dag import Dag, DagJob
from repro.dagman.events import JobAttempt, JobStatus, WorkflowTrace
from repro.dagman.scheduler import DagmanScheduler
from repro.sim.engine import Simulator
from repro.sim.failures import FailureModel
from repro.sim.grid import GridConfig, GridSiteConfig, OpportunisticGrid
from repro.sim.rng import RngStreams
from repro.wms.statistics import render_report, summarize


class TestRunUntilClock:
    def test_clock_reaches_until_when_queue_drains_early(self):
        sim = Simulator()
        sim.schedule(5.0, lambda: None)
        sim.run(until=100.0)
        assert sim.now == 100.0

    def test_clock_reaches_until_on_empty_queue(self):
        sim = Simulator()
        sim.run(until=42.0)
        assert sim.now == 42.0

    def test_events_beyond_until_do_not_fire(self):
        sim = Simulator()
        fired = []
        sim.schedule(5.0, lambda: fired.append(sim.now))
        sim.schedule(200.0, lambda: fired.append(sim.now))
        sim.run(until=100.0)
        assert fired == [5.0]
        assert sim.now == 100.0
        # the late event is still pending and fires on the next run
        sim.run()
        assert fired == [5.0, 200.0]

    def test_consecutive_windows_tile_the_timeline(self):
        """The sampler pattern: fixed windows must not overlap or gap."""
        sim = Simulator()
        sim.schedule(3.0, lambda: None)
        edges = []
        for stop in (10.0, 20.0, 30.0):
            sim.run(until=stop)
            edges.append(sim.now)
        assert edges == [10.0, 20.0, 30.0]


class TestCancelledEventCompaction:
    def test_pending_excludes_cancelled(self):
        sim = Simulator()
        events = [sim.schedule(float(i + 1), lambda: None) for i in range(10)]
        for event in events[:4]:
            event.cancel()
        assert sim.pending == 6

    def test_double_cancel_counts_once(self):
        sim = Simulator()
        event = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        event.cancel()
        event.cancel()
        assert sim.pending == 1

    def test_heavily_cancelled_heap_is_compacted(self):
        sim = Simulator()
        events = [
            sim.schedule(float(i + 1), lambda: None) for i in range(200)
        ]
        for event in events[:150]:
            event.cancel()
        # the heap itself shrank (compaction is amortised, so some
        # cancelled entries below the threshold may remain)
        assert len(sim._queue) < 200
        assert sim.pending == 50

    def test_compacted_heap_fires_survivors_in_order(self):
        sim = Simulator()
        fired = []
        events = [
            sim.schedule(float(i + 1), lambda i=i: fired.append(i))
            for i in range(200)
        ]
        for event in events[:150]:
            event.cancel()
        sim.run()
        assert fired == list(range(150, 200))
        assert sim.pending == 0

    def test_cancelled_below_threshold_still_skipped(self):
        sim = Simulator()
        fired = []
        keep = sim.schedule(2.0, lambda: fired.append("keep"))
        drop = sim.schedule(1.0, lambda: fired.append("drop"))
        drop.cancel()
        sim.run()
        assert fired == ["keep"]
        assert keep.time == 2.0


class TestCancelAfterFire:
    """Cancelling an event that already fired must be a no-op.

    Regression: ``cancel()`` used to increment the cancelled-entry
    counter unconditionally, so the watchdog pattern (a timeout event
    cancelling a completion event — or vice versa — after the race was
    already decided) drove ``pending`` negative and corrupted the
    compaction accounting.
    """

    def test_cancel_after_fire_is_noop(self):
        sim = Simulator()
        event = sim.schedule(1.0, lambda: None)
        sim.run()
        assert sim.pending == 0
        event.cancel()
        assert sim.pending == 0
        assert event.fired
        assert not event.cancelled

    def test_watchdog_losing_the_race_keeps_pending_consistent(self):
        sim = Simulator()
        outcomes = []
        completion = sim.schedule(1.0, lambda: outcomes.append("done"))

        def watchdog():
            completion.cancel()  # too late: completion fired at t=1
            outcomes.append("timeout")

        sim.schedule(2.0, watchdog)
        follow_up = sim.schedule(3.0, lambda: outcomes.append("late"))
        sim.run(until=2.5)
        assert outcomes == ["done", "timeout"]
        assert sim.pending == 1  # exactly the follow-up, not 0 or 2
        sim.run()
        assert outcomes == ["done", "timeout", "late"]
        assert sim.pending == 0
        assert not follow_up.cancelled

    def test_mass_post_fire_cancels_do_not_trigger_compaction(self):
        sim = Simulator()
        events = [sim.schedule(float(i + 1), lambda: None) for i in range(100)]
        sim.run()
        for event in events:
            event.cancel()
            event.cancel()
        assert sim.pending == 0
        assert sim._cancelled == 0
        live = [sim.schedule(float(i + 1), lambda: None) for i in range(10)]
        for event in live[:5]:
            event.cancel()
        assert sim.pending == 5
        sim.run()
        assert sim.pending == 0


class TestGridPeakBusyAtArrival:
    def grid(self, **config_kwargs):
        sim = Simulator()
        config = GridConfig(
            sites=(
                GridSiteConfig("site-a", 8, software_prob=1.0),
            ),
            dispatch_latency_s=5.0,
            wait_mean_s=600.0,
            wait_spike_prob=0.0,
            failures=FailureModel(
                start_failure_prob=0.0, eviction_rate_per_s=0.0
            ),
            **config_kwargs,
        )
        env = OpportunisticGrid(sim, config, streams=RngStreams(seed=0))
        return sim, env

    def submit_bag(self, env, count=4, runtime=100.0):
        records = []
        for i in range(count):
            env.submit(
                DagJob(name=f"j{i}", transformation="t", runtime=runtime),
                records.append,
            )
        return records

    def test_matched_but_waiting_is_not_busy(self):
        sim, env = self.grid()
        self.submit_bag(env, count=4)
        # All four matched a slot immediately (submit dispatches
        # synchronously) but none has arrived yet: slots are reserved,
        # not busy.
        assert env.busy_slots == 4
        assert env.occupied_slots == 0
        assert env.peak_busy == 0

    def test_queue_status_counts_waiting_as_idle(self):
        sim, env = self.grid()
        self.submit_bag(env, count=4)
        assert env.queue_status() == {"idle": 4, "running": 0}

    def test_peak_recorded_at_arrival(self):
        sim, env = self.grid()
        records = self.submit_bag(env, count=4)
        sim.run()
        assert len(records) == 4
        assert all(r.status is JobStatus.SUCCEEDED for r in records)
        # at least one job was actually executing at the peak, and the
        # peak never exceeds what arrived
        assert 1 <= env.peak_busy <= 4
        assert env.occupied_slots == 0  # all released

    def test_peak_below_match_count_when_waits_stagger(self):
        """The regression's observable symptom: with long, spread-out
        opportunistic waits and short payloads, jobs execute one or two
        at a time even though all of them match instantly. Match-time
        accounting reported peak==count; arrival accounting must not."""
        sim, env = self.grid(wait_sigma=1.5, wait_max_s=50000.0)
        self.submit_bag(env, count=8, runtime=1.0)
        sim.run()
        assert env.peak_busy < 8


class TestSummarizePlannedVsAttempted:
    def dag(self):
        dag = Dag()
        for name in ("root", "mid", "leaf"):
            dag.add_job(DagJob(name=name, transformation="t", runtime=1.0))
        dag.add_edge("root", "mid")
        dag.add_edge("mid", "leaf")
        return dag

    def failed_root_trace(self):
        trace = WorkflowTrace()
        trace.add(
            JobAttempt(
                job_name="root", transformation="t", site="s", machine="m",
                attempt=1, submit_time=0.0, setup_start=1.0,
                exec_start=1.0, exec_end=2.0, status=JobStatus.FAILED,
                error="boom",
            )
        )
        return trace

    def test_trace_only_total_is_attempted(self):
        stats = summarize(self.failed_root_trace())
        assert stats.total_jobs == 1
        assert stats.planned_jobs is None
        assert stats.unattempted_jobs == 0

    def test_dag_reveals_unrunnable_descendants(self):
        stats = summarize(self.failed_root_trace(), dag=self.dag())
        assert stats.total_jobs == 3
        assert stats.planned_jobs == 3
        assert stats.attempted_jobs == 1
        assert stats.unattempted_jobs == 2
        assert stats.succeeded_jobs == 0

    def test_expected_jobs_count_works_like_dag(self):
        stats = summarize(self.failed_root_trace(), expected_jobs=3)
        assert stats.total_jobs == 3
        assert stats.unattempted_jobs == 2

    def test_dag_and_expected_jobs_are_exclusive(self):
        with pytest.raises(ValueError, match="not both"):
            summarize(self.failed_root_trace(), dag=self.dag(),
                      expected_jobs=3)

    def test_trace_outside_dag_rejected(self):
        trace = self.failed_root_trace()
        other = Dag()
        other.add_job(DagJob(name="unrelated", transformation="t"))
        with pytest.raises(ValueError, match="not in the DAG"):
            summarize(trace, dag=other)

    def test_expected_fewer_than_attempted_rejected(self):
        with pytest.raises(ValueError, match="fewer than"):
            summarize(self.failed_root_trace(), expected_jobs=0)

    def test_report_prints_planned_vs_attempted(self):
        stats = summarize(self.failed_root_trace(), dag=self.dag())
        report = render_report(stats)
        assert "planned" in report
        assert "never ran (unrunnable)" in report
        assert ": 2" in report

    def test_end_to_end_unrunnable_accounting(self):
        """A real scheduler run: root fails hard, descendants never
        attempt, and the DAG-aware summary says so."""
        from repro.sim.cluster import CampusCluster

        dag = self.dag()
        dag.jobs["root"] = DagJob(
            name="root", transformation="t", runtime=1.0,
            payload=None, retries=0,
        )
        sim = Simulator()
        env = CampusCluster(sim, streams=RngStreams(seed=0))

        real_submit = env.submit

        def failing_submit(job, on_complete, *, attempt=1):
            if job.name == "root":
                def fail():
                    on_complete(
                        JobAttempt(
                            job_name="root", transformation="t",
                            site="sandhills", machine="m", attempt=attempt,
                            submit_time=env.now, setup_start=env.now,
                            exec_start=env.now, exec_end=env.now + 1.0,
                            status=JobStatus.FAILED, error="boom",
                        )
                    )
                sim.schedule(1.0, fail)
            else:
                real_submit(job, on_complete, attempt=attempt)

        env.submit = failing_submit
        result = DagmanScheduler(dag, env).run()
        assert not result.success
        stats = summarize(result.trace, dag=dag)
        assert stats.total_jobs == 3
        assert stats.attempted_jobs == 1
        assert stats.unattempted_jobs == 2


class TestRetryFlowsAcrossRescueRounds:
    """Regression 5: flow arrows must stay causal in a merged
    multi-round trace where rescue rounds restart attempt numbering."""

    @staticmethod
    def attempt(attempt, submit, end, status):
        return JobAttempt(
            job_name="x", transformation="t", site="osg",
            machine=f"m{attempt}-{submit:.0f}", attempt=attempt,
            submit_time=submit, setup_start=submit, exec_start=submit,
            exec_end=end, status=status,
        )

    def merged_trace(self):
        """Round 1: attempts 1 (failed) and 2 (failed); rescue round
        restarts numbering: attempt 1 (succeeded) after --resume."""
        trace = WorkflowTrace()
        trace.add(self.attempt(1, 0.0, 50.0, JobStatus.FAILED))
        trace.add(self.attempt(2, 60.0, 90.0, JobStatus.FAILED))
        trace.add(self.attempt(1, 100.0, 140.0, JobStatus.SUCCEEDED))
        return trace

    def flows(self, doc):
        from collections import defaultdict

        pairs = defaultdict(dict)
        for e in doc["traceEvents"]:
            if e.get("cat") == "retry" and e["ph"] in ("s", "f"):
                pairs[e["id"]][e["ph"]] = e
        return [
            (pair["s"], pair["f"])
            for _, pair in sorted(pairs.items())
        ]

    def test_arrows_span_the_resume_boundary_in_time_order(self):
        from repro.observe import chrome_trace

        doc = chrome_trace(self.merged_trace(), workflow="wf")
        flows = self.flows(doc)
        # two hops: attempt1 -> attempt2 -> rescue-round attempt1
        assert len(flows) == 2
        for start, finish in flows:
            assert start is not None and finish is not None
            assert start["ts"] <= finish["ts"], (
                "retry flow arrow points backwards in time"
            )
        # the cross-boundary hop lands on the rescue round's resubmit
        (hop1, hop2) = flows
        assert hop1[0]["ts"] == 50.0 * 1e6
        assert hop1[1]["ts"] == 60.0 * 1e6
        assert hop2[0]["ts"] == 90.0 * 1e6
        assert hop2[1]["ts"] == 100.0 * 1e6

    def test_single_round_chains_unchanged(self):
        from repro.observe import chrome_trace

        trace = WorkflowTrace()
        trace.add(self.attempt(1, 0.0, 50.0, JobStatus.FAILED))
        trace.add(self.attempt(2, 60.0, 90.0, JobStatus.SUCCEEDED))
        flows = self.flows(chrome_trace(trace, workflow="wf"))
        assert len(flows) == 1
        assert flows[0][0]["ts"] == 50.0 * 1e6
        assert flows[0][1]["ts"] == 60.0 * 1e6
