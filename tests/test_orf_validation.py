"""Tests for ORF finding and assembly validation."""

import pytest

from repro.bio.fasta import FastaRecord
from repro.bio.orf import Orf, find_orfs, longest_orf
from repro.bio.seq import reverse_complement, translate
from repro.core.validation import render_validation, validate_assembly
from repro.datagen.proteins import random_protein_db
from repro.datagen.transcripts import TranscriptomeSpec, generate_transcriptome


def coding_dna(protein: str) -> str:
    table = {
        "A": "GCT", "R": "CGT", "N": "AAT", "D": "GAT", "C": "TGT",
        "Q": "CAA", "E": "GAA", "G": "GGT", "H": "CAT", "I": "ATT",
        "L": "CTT", "K": "AAA", "M": "ATG", "F": "TTT", "P": "CCT",
        "S": "TCT", "T": "ACT", "W": "TGG", "Y": "TAT", "V": "GTT",
    }
    return "".join(table[aa] for aa in protein)


class TestFindOrfs:
    def test_simple_forward_orf(self):
        protein = "M" + "K" * 40
        dna = "CCC" + coding_dna(protein) + "TAA" + "GGG"
        orfs = find_orfs(dna, min_length_aa=30)
        assert orfs
        best = orfs[0]
        assert best.protein == protein
        assert best.has_stop
        assert best.frame == 1
        assert best.start == 4
        assert best.end == 3 + 3 * (len(protein) + 1)

    def test_coordinates_translate_back(self):
        protein = "M" + "ADKLV" * 10
        dna = "GG" + coding_dna(protein) + "TGA"
        (orf, *_) = find_orfs(dna, min_length_aa=20)
        coding = dna[orf.start - 1 : orf.end]
        assert translate(coding, to_stop=True) == protein

    def test_reverse_strand_orf(self):
        protein = "M" + "DE" * 25
        fwd = "AT" + coding_dna(protein) + "TAATT"
        dna = reverse_complement(fwd)
        orfs = find_orfs(dna, min_length_aa=30)
        # The planted ORF must be found on a minus frame (the reverse
        # complement of the repeat may host its own plus-strand ORFs).
        minus = [o for o in orfs if o.frame < 0 and o.protein == protein]
        assert minus
        assert minus[0].start > minus[0].end

    def test_require_start_toggle(self):
        # A stop-to-stop frame with no ATG.
        dna = coding_dna("K" * 50) + "TAA"
        assert find_orfs(dna, min_length_aa=30) == []
        orfs = find_orfs(dna, min_length_aa=30, require_start=False)
        assert any(o.protein == "K" * 50 and o.has_stop for o in orfs)

    def test_open_ended_orf_no_stop(self):
        dna = coding_dna("M" + "R" * 40)
        (orf, *_) = find_orfs(dna, min_length_aa=30)
        assert not orf.has_stop

    def test_min_length_filter(self):
        dna = "CCC" + coding_dna("M" + "K" * 10) + "TAA"
        assert find_orfs(dna, min_length_aa=30) == []
        assert find_orfs(dna, min_length_aa=5)

    def test_longest_orf_helper(self):
        assert longest_orf("ACGTACGT") is None
        dna = coding_dna("M" + "W" * 35) + "TAA"
        assert len(longest_orf(dna)) == 36

    def test_validation(self):
        with pytest.raises(ValueError):
            find_orfs("ACGT", min_length_aa=0)
        with pytest.raises(ValueError):
            Orf(frame=0, start=1, end=3, protein="M", has_stop=True)
        with pytest.raises(ValueError):
            Orf(frame=1, start=1, end=3, protein="", has_stop=True)

    def test_sorted_longest_first(self):
        dna = ("C" + coding_dna("M" + "K" * 60) + "TAA"
               + coding_dna("M" + "R" * 35) + "TAA")
        orfs = find_orfs(dna, min_length_aa=30)
        assert len(orfs[0]) >= len(orfs[-1])


@pytest.fixture(scope="module")
def synthetic_assembly():
    proteins = random_protein_db(5, seed=61, min_length=120, max_length=160)
    t = generate_transcriptome(
        proteins,
        TranscriptomeSpec(
            mean_fragments_per_gene=1.0, sigma_fragments=0.0,
            fragment_min_fraction=1.0, fragment_max_fraction=1.0,
            utr_length=10, error_rate=0.0, reverse_fraction=0.3,
        ),
        seed=62,
    )
    return proteins, t


class TestValidateAssembly:
    def test_contiguity_metrics(self, synthetic_assembly):
        _, t = synthetic_assembly
        report = validate_assembly(t.transcripts)
        assert report.sequence_count == len(t.transcripts)
        assert report.n50 > 300
        assert report.max_length >= report.n50

    def test_orf_fraction_high_for_coding_transcripts(self, synthetic_assembly):
        _, t = synthetic_assembly
        report = validate_assembly(t.transcripts)
        assert report.orf_fraction >= 0.8

    def test_reference_recovery(self, synthetic_assembly):
        proteins, t = synthetic_assembly
        report = validate_assembly(t.transcripts, protein_db=proteins)
        assert report.references_hit == len(proteins)
        assert report.reference_recovered >= 0.8

    def test_chimera_detection_via_origin(self, synthetic_assembly):
        proteins, t = synthetic_assembly
        # Build a fake fused record claiming members from two genes.
        fused = FastaRecord(
            id="fusedX",
            seq=t.transcripts[0].seq + t.transcripts[1].seq,
            description=(
                f"fusedX {t.transcripts[0].id} {t.transcripts[1].id}"
            ),
        )
        origin = dict(t.origin)
        report = validate_assembly(
            list(t.transcripts) + [fused], origin=origin
        )
        assert report.chimera_count == 1

    def test_empty_assembly(self):
        report = validate_assembly([])
        assert report.sequence_count == 0
        assert report.n50 == 0

    def test_render(self, synthetic_assembly):
        proteins, t = synthetic_assembly
        report = validate_assembly(t.transcripts, protein_db=proteins,
                                   origin=t.origin)
        text = render_validation(report, title="synthetic")
        assert "N50" in text
        assert "reference recovered" in text
        assert "chimeric" in text
