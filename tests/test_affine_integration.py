"""Integration tests: affine gaps through BLAST and CAP3."""

import random

import pytest

from repro.bio.fasta import FastaRecord
from repro.blast.blastx import BlastXParams, blastx
from repro.blast.database import ProteinDatabase
from repro.cap3.assembler import Cap3Params, assemble


def random_dna(rng, n):
    return "".join(rng.choice("ACGT") for _ in range(n))


CODON_FOR = {
    "A": "GCT", "R": "CGT", "N": "AAT", "D": "GAT", "C": "TGT",
    "Q": "CAA", "E": "GAA", "G": "GGT", "H": "CAT", "I": "ATT",
    "L": "CTT", "K": "AAA", "M": "ATG", "F": "TTT", "P": "CCT",
    "S": "TCT", "T": "ACT", "W": "TGG", "Y": "TAT", "V": "GTT",
}


class TestBlastXAffine:
    @pytest.fixture(scope="class")
    def db(self):
        rng = random.Random(99)
        protein = "".join(rng.choice(list(CODON_FOR)) for _ in range(90))
        return protein, ProteinDatabase(
            records=[FastaRecord(id="prot", seq=protein)]
        )

    def test_affine_finds_same_subject(self, db):
        protein, database = db
        dna = "".join(CODON_FOR[aa] for aa in protein)
        query = FastaRecord(id="q", seq=dna)
        linear = blastx(query, database, BlastXParams(affine=False))
        affine = blastx(query, database, BlastXParams(affine=True))
        assert linear and affine
        assert affine[0].sseqid == linear[0].sseqid == "prot"

    def test_affine_spans_deletion_better(self, db):
        protein, database = db
        # Delete 4 residues from the middle of the coding sequence: a
        # 4-aa gap costs 11+3*1=14 affine vs 4*11=44 linear.
        dna = "".join(CODON_FOR[aa] for aa in protein[:40] + protein[44:])
        query = FastaRecord(id="q", seq=dna)
        affine = blastx(query, database, BlastXParams(affine=True))
        linear = blastx(query, database, BlastXParams(affine=False))
        assert affine, "affine search must find the gapped homolog"
        best_affine = affine[0]
        assert best_affine.gapopen >= 1
        # The affine hit bridges the deletion in one alignment.
        assert best_affine.length >= 80
        if linear:
            assert best_affine.bitscore >= linear[0].bitscore


class TestCap3Affine:
    def test_affine_assembly_merges_indel_reads(self):
        rng = random.Random(7)
        genome = random_dna(rng, 500)
        # Read b lost 3 consecutive bases inside the overlap region.
        a = genome[:300]
        b_full = genome[180:]
        b = b_full[:60] + b_full[63:]
        reads = [FastaRecord(id="a", seq=a), FastaRecord(id="b", seq=b)]
        result = assemble(
            reads,
            Cap3Params(affine=True, gap_open=-8, gap_extend=-1,
                       min_identity=0.85),
        )
        assert len(result.contigs) == 1

    def test_affine_matches_linear_on_clean_data(self):
        rng = random.Random(8)
        genome = random_dna(rng, 600)
        reads = [
            FastaRecord(id=f"r{i}", seq=genome[s : s + 250])
            for i, s in enumerate((0, 150, 300, 350))
        ]
        linear = assemble(reads, Cap3Params(affine=False))
        affine = assemble(reads, Cap3Params(affine=True))
        assert len(linear.contigs) == len(affine.contigs) == 1
        assert set(linear.contigs[0].members) == set(affine.contigs[0].members)

    def test_params_carry_affine_fields(self):
        p = Cap3Params(affine=True, gap_open=-10, gap_extend=-1)
        assert p.affine and p.gap_open == -10
