"""Tests for the planner's data-reuse pruning."""

import pytest

from repro.core.workflow_factory import (
    ALIGNMENTS_LFN,
    TRANSCRIPTS_LFN,
    build_blast2cap3_adag,
    default_catalogs,
)
from repro.wms.catalogs import ReplicaCatalog
from repro.wms.planner import PlannerOptions, plan


def planned_with(replicas_extra, n=4, enable_reuse=True):
    adag = build_blast2cap3_adag(n)
    sites, tc, rc = default_catalogs()
    for lfn in replicas_extra:
        rc.add(lfn, f"file:///cache/{lfn}")
    return plan(
        adag,
        site_name="sandhills",
        sites=sites,
        transformations=tc,
        replicas=rc,
        options=PlannerOptions(enable_reuse=enable_reuse),
    )


class TestDataReuse:
    def test_no_registered_outputs_changes_nothing(self):
        fresh = planned_with([])
        baseline = planned_with([], enable_reuse=False)
        assert set(fresh.dag.jobs) == set(baseline.dag.jobs)

    def test_existing_partition_outputs_prune_their_jobs(self):
        # run_cap3_1's outputs exist from a previous run.
        planned = planned_with(["joined_1.fasta", "merged_1.txt"])
        assert "run_cap3_1" not in planned.dag.jobs
        assert "run_cap3_2" in planned.dag.jobs
        # The reused files are staged in for the merge jobs.
        assert "stage_in_joined_1_fasta" in planned.dag.jobs
        assert "merge_joined" in planned.dag.children("stage_in_joined_1_fasta")

    def test_cascade_prunes_feeder_jobs(self):
        # Every run_cap3 output plus the list files exist: split() and
        # the list-creation jobs feed nobody... except merge_unjoined
        # still needs transcripts_dict.txt, which keeps its producer.
        outputs = ["alignments.list"]
        for i in range(1, 5):
            outputs += [f"joined_{i}.fasta", f"merged_{i}.txt"]
        planned = planned_with(outputs)
        assert all(
            f"run_cap3_{i}" not in planned.dag.jobs for i in range(1, 5)
        )
        assert "split" not in planned.dag.jobs  # cascade: fed only cap3
        assert "create_alignment_list" not in planned.dag.jobs
        # transcripts_dict.txt is still consumed by merge_unjoined.
        assert "create_transcript_list" in planned.dag.jobs
        assert "merge_joined" in planned.dag.jobs

    def test_full_downstream_reuse(self):
        planned = planned_with(["joined.fasta", "unjoined.fasta"])
        assert "merge_joined" not in planned.dag.jobs
        assert "merge_unjoined" not in planned.dag.jobs
        assert "concat_final" in planned.dag.jobs
        # Everything upstream was only feeding the pruned merges...
        # except nothing: run_cap3 outputs merged_i.txt consumed only by
        # merge_unjoined (pruned) and joined_i consumed by merge_joined
        # (pruned) -> the whole upstream cascade goes.
        assert all(
            not name.startswith("run_cap3") for name in planned.dag.jobs
        )
        assert "split" not in planned.dag.jobs

    def test_reused_final_output_empties_compute_plan(self):
        planned = planned_with(["merged_transcriptome.fasta"])
        # concat_final pruned; cascade removes everything upstream.
        compute = [
            n for n in planned.dag.jobs
            if not n.startswith(("stage_in", "stage_out", "cleanup"))
        ]
        assert compute == []

    def test_external_inputs_still_required(self):
        # Reuse never waives the original input replicas (they're in
        # default_catalogs already — removing them must still fail).
        adag = build_blast2cap3_adag(3)
        sites, tc, _ = default_catalogs()
        empty_rc = ReplicaCatalog()
        empty_rc.add("joined_1.fasta", "file:///cache/joined_1.fasta")
        from repro.wms.planner import PlanningError

        with pytest.raises(PlanningError, match="without replicas"):
            plan(adag, site_name="sandhills", sites=sites,
                 transformations=tc, replicas=empty_rc,
                 options=PlannerOptions(enable_reuse=True))

    def test_reuse_plan_still_executes(self):
        from repro.dagman.scheduler import DagmanScheduler
        from repro.sim.cluster import CampusCluster
        from repro.sim.engine import Simulator
        from repro.sim.rng import RngStreams

        planned = planned_with(["joined_1.fasta", "merged_1.txt"])
        env = CampusCluster(Simulator(), streams=RngStreams(seed=0))
        result = DagmanScheduler(planned.dag, env).run()
        assert result.success

    def test_reuse_reduces_modelled_walltime(self):
        from repro.perfmodel.task_models import PaperTaskModel

        model = PaperTaskModel()
        adag = build_blast2cap3_adag(10, model=model)
        sites, tc, rc = default_catalogs()
        # Cache the heaviest partition's outputs.
        runtimes = model.partition_runtimes(10)
        heavy = runtimes.index(max(runtimes)) + 1
        rc.add(f"joined_{heavy}.fasta", "file:///cache/x")
        rc.add(f"merged_{heavy}.txt", "file:///cache/y")
        reuse = plan(adag, site_name="sandhills", sites=sites,
                     transformations=tc, replicas=rc,
                     options=PlannerOptions(enable_reuse=True))
        fresh = plan(adag, site_name="sandhills", sites=sites,
                     transformations=tc, replicas=rc,
                     options=PlannerOptions(enable_reuse=False))
        assert (
            reuse.dag.critical_path_length()
            < fresh.dag.critical_path_length()
        )
