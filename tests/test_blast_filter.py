"""Tests for low-complexity masking and its effect on BLASTX."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.bio.fasta import FastaRecord
from repro.blast.blastx import BlastXParams, blastx
from repro.blast.database import ProteinDatabase
from repro.blast.filter import (
    DNA_MASK,
    PROTEIN_MASK,
    MaskParams,
    mask_low_complexity,
    masked_fraction,
    shannon_entropy,
)


class TestEntropy:
    def test_monotone_cases(self):
        assert shannon_entropy("AAAA") == 0.0
        assert shannon_entropy("ACGT") == pytest.approx(2.0)
        assert 0 < shannon_entropy("AACG") < 2.0

    def test_empty(self):
        assert shannon_entropy("") == 0.0

    @given(st.text(alphabet="ACDEFGHIKLMNPQRSTVWY", min_size=1, max_size=50))
    @settings(max_examples=50)
    def test_bounds(self, s):
        h = shannon_entropy(s)
        assert 0.0 <= h <= shannon_entropy("ACDEFGHIKLMNPQRSTVWY") + 1e-9


class TestMasking:
    def test_homopolymer_masked(self):
        seq = "MEDLKVWHISTR" + "A" * 30 + "MEDLKVWHISTR"
        masked = mask_low_complexity(seq)
        middle = masked[15:40]
        assert set(middle) == {"X"}

    def test_complex_sequence_untouched(self):
        rng = random.Random(3)
        seq = "".join(
            rng.choice("ACDEFGHIKLMNPQRSTVWY") for _ in range(100)
        )
        assert mask_low_complexity(seq) == seq

    def test_short_sequence_passthrough(self):
        assert mask_low_complexity("AAAA") == "AAAA"  # shorter than window

    def test_dna_preset_masks_polya(self):
        seq = "ACGTACGTACGTACGTACGTACGTACGTACGT" + "A" * 60 + \
              "ACGTACGTACGTACGTACGTACGTACGTACGT"
        masked = mask_low_complexity(seq, DNA_MASK)
        assert "N" * 30 in masked
        assert masked.startswith("ACGT")

    def test_masked_fraction(self):
        assert masked_fraction("A" * 50) == 1.0
        rng = random.Random(4)
        complex_seq = "".join(
            rng.choice("ACDEFGHIKLMNPQRSTVWY") for _ in range(80)
        )
        assert masked_fraction(complex_seq) == 0.0
        assert masked_fraction("") == 0.0

    def test_params_validation(self):
        with pytest.raises(ValueError):
            MaskParams(window=1, min_entropy=1.0, mask_char="X")
        with pytest.raises(ValueError):
            MaskParams(window=10, min_entropy=-1.0, mask_char="X")
        with pytest.raises(ValueError):
            MaskParams(window=10, min_entropy=1.0, mask_char="XX")

    @given(st.text(alphabet="ACGT", max_size=200))
    @settings(max_examples=40)
    def test_length_preserved(self, seq):
        assert len(mask_low_complexity(seq, DNA_MASK)) == len(seq)

    @given(st.text(alphabet="ACGT", max_size=200))
    @settings(max_examples=40)
    def test_idempotent(self, seq):
        once = mask_low_complexity(seq, DNA_MASK)
        assert mask_low_complexity(once, DNA_MASK) == once


CODON_FOR = {
    "A": "GCT", "R": "CGT", "N": "AAT", "D": "GAT", "C": "TGT",
    "Q": "CAA", "E": "GAA", "G": "GGT", "H": "CAT", "I": "ATT",
    "L": "CTT", "K": "AAA", "M": "ATG", "F": "TTT", "P": "CCT",
    "S": "TCT", "T": "ACT", "W": "TGG", "Y": "TAT", "V": "GTT",
}


class TestMaskingInBlastX:
    def test_polya_tail_stops_spurious_seeding(self):
        # Subject with a poly-K run (AAA codons = poly-A DNA); a query
        # that shares ONLY the low-complexity run should lose its hit
        # once masking is on.
        rng = random.Random(11)
        complex_part = "".join(rng.choice(list(CODON_FOR)) for _ in range(60))
        subject = complex_part + "K" * 25
        db = ProteinDatabase(records=[FastaRecord(id="p", seq=subject)])

        query_dna = "AAA" * 40  # translates to poly-K in frame +1
        query = FastaRecord(id="polya", seq=query_dna)
        unmasked = blastx(query, db, BlastXParams(mask_query=False,
                                                  evalue_cutoff=10.0))
        masked = blastx(query, db, BlastXParams(mask_query=True,
                                                evalue_cutoff=10.0))
        assert unmasked, "unmasked poly-A query should hit the poly-K run"
        assert masked == []

    def test_real_homolog_survives_masking(self):
        rng = random.Random(12)
        protein = "".join(rng.choice(list(CODON_FOR)) for _ in range(80))
        db = ProteinDatabase(records=[FastaRecord(id="p", seq=protein)])
        dna = "".join(CODON_FOR[aa] for aa in protein)
        query = FastaRecord(id="q", seq=dna)
        hits = blastx(query, db, BlastXParams(mask_query=True))
        assert hits and hits[0].sseqid == "p"
