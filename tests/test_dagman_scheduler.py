"""Tests for the DAGMan scheduling loop on a scripted environment."""

import pytest

from repro.dagman.dag import Dag, DagJob
from repro.dagman.events import JobAttempt, JobStatus
from repro.dagman.scheduler import DagmanScheduler, NodeState
from repro.sim.engine import Simulator


class ScriptedEnvironment:
    """Deterministic environment: fixed runtimes, scripted failures.

    ``failures`` maps (job_name, attempt) -> True to force a failure.
    """

    def __init__(self, failures=None):
        self.sim = Simulator()
        self.failures = failures or {}
        self.submitted = []
        self.max_concurrent = 0
        self._running = 0

    @property
    def now(self):
        return self.sim.now

    def submit(self, job, on_complete, *, attempt=1):
        self.submitted.append((job.name, attempt))
        self._running += 1
        self.max_concurrent = max(self.max_concurrent, self._running)
        submit_time = self.now

        def finish():
            self._running -= 1
            failed = self.failures.get((job.name, attempt), False)
            on_complete(
                JobAttempt(
                    job_name=job.name,
                    transformation=job.transformation,
                    site="scripted",
                    machine="m0",
                    attempt=attempt,
                    submit_time=submit_time,
                    setup_start=submit_time,
                    exec_start=submit_time,
                    exec_end=self.now,
                    status=JobStatus.FAILED if failed else JobStatus.SUCCEEDED,
                    error="scripted failure" if failed else None,
                )
            )

        self.sim.schedule(job.runtime, finish)

    def run_until_complete(self):
        self.sim.run()


def diamond(retries=0):
    dag = Dag(name="diamond")
    for name, rt in (("a", 5), ("b", 10), ("c", 20), ("d", 5)):
        dag.add_job(
            DagJob(name=name, transformation="t", runtime=rt, retries=retries)
        )
    dag.add_edge("a", "b")
    dag.add_edge("a", "c")
    dag.add_edge("b", "d")
    dag.add_edge("c", "d")
    return dag


class TestHappyPath:
    def test_all_jobs_succeed(self):
        env = ScriptedEnvironment()
        result = DagmanScheduler(diamond(), env).run()
        assert result.success
        assert all(s is NodeState.DONE for s in result.states.values())

    def test_dependency_order_respected(self):
        env = ScriptedEnvironment()
        DagmanScheduler(diamond(), env).run()
        order = [name for name, _ in env.submitted]
        assert order.index("a") < order.index("b")
        assert order.index("a") < order.index("c")
        assert order.index("d") > order.index("b")
        assert order.index("d") > order.index("c")

    def test_parallel_branches_overlap(self):
        env = ScriptedEnvironment()
        DagmanScheduler(diamond(), env).run()
        assert env.max_concurrent >= 2  # b and c ran together

    def test_wall_time_is_critical_path(self):
        env = ScriptedEnvironment()
        result = DagmanScheduler(diamond(), env).run()
        # a(5) + c(20) + d(5): the scripted env has no queue waits.
        assert result.wall_time == 30.0

    def test_pre_done_jobs_skipped(self):
        dag = diamond()
        dag.done.add("a")
        env = ScriptedEnvironment()
        result = DagmanScheduler(dag, env).run()
        assert result.success
        assert ("a", 1) not in env.submitted

    def test_trace_has_one_attempt_per_job(self):
        env = ScriptedEnvironment()
        result = DagmanScheduler(diamond(), env).run()
        assert len(result.trace) == 4
        assert result.trace.retry_count == 0


class TestThrottle:
    def test_max_jobs_limits_concurrency(self):
        dag = Dag()
        for i in range(10):
            dag.add_job(DagJob(name=f"j{i}", transformation="t", runtime=10))
        env = ScriptedEnvironment()
        DagmanScheduler(dag, env, max_jobs=3).run()
        assert env.max_concurrent <= 3

    def test_invalid_max_jobs(self):
        with pytest.raises(ValueError):
            DagmanScheduler(Dag(), ScriptedEnvironment(), max_jobs=0)

    def test_priority_orders_submissions(self):
        dag = Dag()
        for i, prio in enumerate((0, 10, 5)):
            dag.add_job(
                DagJob(name=f"j{i}", transformation="t", runtime=1, priority=prio)
            )
        env = ScriptedEnvironment()
        DagmanScheduler(dag, env, max_jobs=1).run()
        first_three = [name for name, _ in env.submitted]
        assert first_three == ["j1", "j2", "j0"]

    def test_retried_job_queues_behind_waiting_peers(self):
        # Regression: a retried job must re-enter the ready queue through
        # the same priority sort as fresh nodes — FIFO by *readiness*
        # within a priority class. With a max_jobs throttle, the retry
        # goes behind equal-priority nodes that have been waiting since
        # the workflow started, instead of starving them by resubmitting
        # immediately.
        dag = Dag()
        for i in range(4):
            dag.add_job(
                DagJob(name=f"j{i}", transformation="t", runtime=1, retries=1)
            )
        env = ScriptedEnvironment(failures={("j0", 1): True})
        result = DagmanScheduler(dag, env, max_jobs=1).run()
        assert result.success
        assert env.submitted == [
            ("j0", 1),
            ("j1", 1),
            ("j2", 1),
            ("j3", 1),
            ("j0", 2),  # the retry waited its turn
        ]


class TestRetries:
    def test_retry_recovers_from_transient_failure(self):
        env = ScriptedEnvironment(failures={("b", 1): True})
        result = DagmanScheduler(diamond(retries=2), env).run()
        assert result.success
        assert ("b", 2) in env.submitted
        assert result.trace.retry_count == 1

    def test_retries_exhausted_fails_job(self):
        env = ScriptedEnvironment(
            failures={("b", 1): True, ("b", 2): True, ("b", 3): True}
        )
        result = DagmanScheduler(diamond(retries=2), env).run()
        assert not result.success
        assert result.failed_jobs == ["b"]

    def test_descendants_marked_unrunnable(self):
        env = ScriptedEnvironment(failures={("a", 1): True})
        result = DagmanScheduler(diamond(retries=0), env).run()
        assert result.failed_jobs == ["a"]
        assert set(result.unrunnable_jobs) == {"b", "c", "d"}

    def test_independent_branch_still_completes(self):
        env = ScriptedEnvironment(failures={("b", 1): True})
        result = DagmanScheduler(diamond(retries=0), env).run()
        assert result.states["c"] is NodeState.DONE
        assert result.states["d"] is NodeState.UNRUNNABLE

    def test_default_retries_override(self):
        env = ScriptedEnvironment(failures={("b", 1): True})
        result = DagmanScheduler(
            diamond(retries=0), env, default_retries=1
        ).run()
        assert result.success


class TestRescue:
    def test_rescue_marks_done_jobs(self, tmp_path):
        env = ScriptedEnvironment(failures={("c", 1): True})
        scheduler = DagmanScheduler(diamond(retries=0), env)
        result = scheduler.run()
        assert not result.success
        rescue_path = tmp_path / "wf.rescue001"
        scheduler.write_rescue(rescue_path)
        rescue = Dag.parse_dagfile(rescue_path)
        assert "a" in rescue.done
        assert "b" in rescue.done
        assert "c" not in rescue.done

    def test_rescue_resubmission_completes(self, tmp_path):
        # First run fails 'c' permanently; rescue run succeeds.
        env1 = ScriptedEnvironment(failures={("c", 1): True})
        sched1 = DagmanScheduler(diamond(retries=0), env1)
        assert not sched1.run().success
        rescue_path = tmp_path / "wf.rescue001"
        sched1.write_rescue(rescue_path)

        parsed = Dag.parse_dagfile(rescue_path)
        # Re-attach runtimes (the .dag file does not carry them).
        rescue = diamond()
        rescue.done = parsed.done
        env2 = ScriptedEnvironment()
        result = DagmanScheduler(rescue, env2).run()
        assert result.success
        resubmitted = [name for name, _ in env2.submitted]
        assert "a" not in resubmitted
        assert "c" in resubmitted

    def test_status_counts(self):
        env = ScriptedEnvironment()
        scheduler = DagmanScheduler(diamond(), env)
        result = scheduler.run()
        assert scheduler.status_counts() == {"done": 4}
        assert result.wall_time > 0

    def test_double_start_rejected(self):
        scheduler = DagmanScheduler(diamond(), ScriptedEnvironment())
        scheduler.start()
        with pytest.raises(RuntimeError, match="already started"):
            scheduler.start()
