"""Tests for the synthetic data generators."""

import random

import pytest

from repro.bio.fastq import quality_to_phred
from repro.bio.seq import is_dna, is_protein, translate
from repro.datagen.proteins import random_protein, random_protein_db
from repro.datagen.reads import ReadSimSpec, simulate_paired_reads
from repro.datagen.transcripts import TranscriptomeSpec, generate_transcriptome
from repro.datagen.workload import generate_blast2cap3_workload, paper_scale


class TestProteins:
    def test_reproducible(self):
        assert random_protein_db(5, seed=3) == random_protein_db(5, seed=3)

    def test_different_seeds_differ(self):
        assert random_protein_db(5, seed=3) != random_protein_db(5, seed=4)

    def test_valid_proteins(self):
        for record in random_protein_db(10, seed=1):
            assert is_protein(record.seq)
            assert "*" not in record.seq

    def test_length_bounds(self):
        for record in random_protein_db(20, seed=2, min_length=50, max_length=60):
            assert 50 <= len(record) <= 60

    def test_validation(self):
        with pytest.raises(ValueError):
            random_protein_db(-1)
        with pytest.raises(ValueError):
            random_protein_db(1, min_length=10, max_length=5)
        with pytest.raises(ValueError):
            random_protein(random.Random(0), 0)


class TestTranscriptome:
    @pytest.fixture(scope="class")
    def generated(self):
        proteins = random_protein_db(8, seed=5)
        spec = TranscriptomeSpec(
            mean_fragments_per_gene=3.0, noise_transcripts=5
        )
        return proteins, generate_transcriptome(proteins, spec, seed=9)

    def test_every_gene_has_fragments(self, generated):
        proteins, result = generated
        assert set(result.cluster_sizes) == {p.id for p in proteins}
        assert all(n >= 1 for n in result.cluster_sizes.values())

    def test_noise_count(self, generated):
        _, result = generated
        noise = [t for t in result.transcripts if t.id.startswith("tr_noise")]
        assert len(noise) == 5

    def test_sequences_are_dna(self, generated):
        _, result = generated
        assert all(is_dna(t.seq) for t in result.transcripts)

    def test_cdna_translates_back_to_protein(self, generated):
        proteins, result = generated
        for protein in proteins:
            assert translate(result.gene_cdna[protein.id]) == protein.seq

    def test_reproducible(self):
        proteins = random_protein_db(4, seed=5)
        a = generate_transcriptome(proteins, seed=1)
        b = generate_transcriptome(proteins, seed=1)
        assert [t.seq for t in a.transcripts] == [t.seq for t in b.transcripts]

    def test_skew_produces_variation(self):
        proteins = random_protein_db(40, seed=6)
        spec = TranscriptomeSpec(mean_fragments_per_gene=4.0, sigma_fragments=0.9)
        result = generate_transcriptome(proteins, spec, seed=11)
        sizes = list(result.cluster_sizes.values())
        assert max(sizes) >= 2 * min(sizes)

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            TranscriptomeSpec(mean_fragments_per_gene=0)
        with pytest.raises(ValueError):
            TranscriptomeSpec(error_rate=0.9)
        with pytest.raises(ValueError):
            TranscriptomeSpec(fragment_min_fraction=0.9, fragment_max_fraction=0.5)


class TestWorkload:
    def test_oracle_hits_cover_non_noise(self):
        wl = generate_blast2cap3_workload(
            n_proteins=6,
            spec=TranscriptomeSpec(noise_transcripts=3),
            seed=2,
        )
        hit_queries = {h.qseqid for h in wl.hits}
        for t in wl.transcripts:
            if t.id.startswith("tr_noise"):
                assert t.id not in hit_queries
            else:
                assert t.id in hit_queries

    def test_oracle_hits_point_to_origin(self):
        wl = generate_blast2cap3_workload(n_proteins=6, seed=2)
        for h in wl.hits:
            assert wl.transcriptome.origin[h.qseqid] == h.sseqid

    def test_blastx_mode_finds_origins(self):
        wl = generate_blast2cap3_workload(
            n_proteins=4,
            spec=TranscriptomeSpec(
                mean_fragments_per_gene=2.0, error_rate=0.001
            ),
            seed=3,
            alignments="blastx",
        )
        assert wl.hits, "real BLASTX search found nothing"
        # Best hit per transcript should be its true origin almost always.
        best = {}
        for h in wl.hits:
            if h.qseqid not in best or h.evalue < best[h.qseqid].evalue:
                best[h.qseqid] = h
        correct = sum(
            1
            for q, h in best.items()
            if wl.transcriptome.origin.get(q) == h.sseqid
        )
        assert correct / len(best) > 0.9

    def test_unknown_mode(self):
        with pytest.raises(ValueError, match="unknown alignments mode"):
            generate_blast2cap3_workload(alignments="psychic")

    def test_paper_scale_constants(self):
        scale = paper_scale()
        assert scale.transcripts == 236_529
        assert scale.alignment_hits == 1_717_454
        assert scale.serial_walltime_s == 360_000.0
        assert 1000 < scale.mean_transcript_length < 2500


class TestReads:
    def test_pair_properties(self):
        template = "".join(
            random.Random(1).choice("ACGT") for _ in range(2000)
        )
        pairs = list(simulate_paired_reads(template, seed=4))
        assert pairs
        for r1, r2 in pairs:
            assert len(r1) == 100 and len(r2) == 100
            assert r1.id.endswith("/1") and r2.id.endswith("/2")

    def test_quality_declines(self):
        template = "".join(
            random.Random(2).choice("ACGT") for _ in range(1500)
        )
        (r1, _), *_ = simulate_paired_reads(template, seed=5)
        scores = quality_to_phred(r1.quality)
        first, last = sum(scores[:20]) / 20, sum(scores[-20:]) / 20
        assert first > last

    def test_coverage_scales_pair_count(self):
        template = "".join(
            random.Random(3).choice("ACGT") for _ in range(3000)
        )
        low = list(simulate_paired_reads(template, ReadSimSpec(coverage=5), seed=6))
        high = list(simulate_paired_reads(template, ReadSimSpec(coverage=20), seed=6))
        assert len(high) > 2 * len(low)

    def test_template_too_short(self):
        with pytest.raises(ValueError, match="shorter"):
            list(simulate_paired_reads("ACGT" * 10))

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            ReadSimSpec(read_length=5)
        with pytest.raises(ValueError):
            ReadSimSpec(coverage=0)
        with pytest.raises(ValueError):
            ReadSimSpec(fragment_mean=50, read_length=100)
