"""Tests for consensus calling and the assemble() API."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.bio.fasta import FastaRecord
from repro.cap3.assembler import AssemblyResult, Cap3Params, Contig, assemble
from repro.cap3.consensus import call_consensus
from repro.cap3.graph import Layout, LayoutRead


def random_dna(rng: random.Random, n: int) -> str:
    return "".join(rng.choice("ACGT") for _ in range(n))


def tiled_reads(genome: str, read_len: int, step: int, prefix: str = "r"):
    """Overlapping windows covering the genome end to end."""
    starts = list(range(0, max(1, len(genome) - read_len + 1), step))
    if starts[-1] + read_len < len(genome):
        starts.append(len(genome) - read_len)
    return [
        FastaRecord(id=f"{prefix}{i}", seq=genome[s : s + read_len])
        for i, s in enumerate(starts)
    ]


class TestConsensus:
    def test_single_read_layout(self):
        layout = Layout(reads=[LayoutRead("a", 0, False)])
        assert call_consensus(layout, {"a": "ACGT"}) == "ACGT"

    def test_two_read_merge(self):
        genome = "ACGTACGTGGAATTCCAAGGTTACGT"
        layout = Layout(
            reads=[LayoutRead("a", 0, False), LayoutRead("b", 10, False)]
        )
        reads = {"a": genome[:18], "b": genome[10:]}
        assert call_consensus(layout, reads) == genome

    def test_majority_outvotes_error(self):
        genome = "ACGTACGTACGTACGTACGT"
        bad = "ACGTACGTACGTACGTACGA"  # last base wrong
        layout = Layout(
            reads=[
                LayoutRead("good1", 0, False),
                LayoutRead("bad", 0, False),
                LayoutRead("good2", 0, False),
            ]
        )
        reads = {"good1": genome, "bad": bad, "good2": genome}
        assert call_consensus(layout, reads) == genome

    def test_n_never_wins_against_real_base(self):
        layout = Layout(
            reads=[LayoutRead("n", 0, False), LayoutRead("real", 0, False)]
        )
        reads = {"n": "NNNN", "real": "ACGT"}
        assert call_consensus(layout, reads) == "ACGT"

    def test_flipped_read_contributes_revcomp(self):
        layout = Layout(reads=[LayoutRead("a", 0, True)])
        assert call_consensus(layout, {"a": "AAAC"}) == "GTTT"

    def test_empty_layout(self):
        assert call_consensus(Layout(), {}) == ""


class TestAssemble:
    def test_overlapping_reads_merge_into_one_contig(self):
        rng = random.Random(7)
        genome = random_dna(rng, 600)
        reads = tiled_reads(genome, 250, 150)
        result = assemble(reads)
        assert len(result.contigs) == 1
        assert result.singlets == []
        contig = result.contigs[0]
        assert set(contig.members) == {r.id for r in reads}
        # Consensus should reconstruct the genome (near-)exactly.
        assert contig.seq == genome

    def test_unrelated_reads_stay_singlets(self):
        rng = random.Random(8)
        reads = [
            FastaRecord(id="a", seq=random_dna(rng, 300)),
            FastaRecord(id="b", seq=random_dna(rng, 300)),
        ]
        result = assemble(reads)
        assert result.contigs == []
        assert {r.id for r in result.singlets} == {"a", "b"}

    def test_two_genes_two_contigs(self):
        rng = random.Random(9)
        g1, g2 = random_dna(rng, 500), random_dna(rng, 500)
        reads = tiled_reads(g1, 220, 140, "x") + tiled_reads(g2, 220, 140, "y")
        result = assemble(reads)
        assert len(result.contigs) == 2
        assert result.singlets == []

    def test_containment_with_singlet_container_merges_pair(self):
        rng = random.Random(10)
        genome = random_dna(rng, 400)
        reads = [
            FastaRecord(id="big", seq=genome),
            FastaRecord(id="small", seq=genome[100:250]),
        ]
        result = assemble(reads)
        assert len(result.contigs) == 1
        assert set(result.contigs[0].members) == {"big", "small"}
        assert result.contigs[0].seq == genome
        assert result.singlets == []

    def test_every_input_accounted_once(self):
        rng = random.Random(11)
        g1 = random_dna(rng, 700)
        reads = tiled_reads(g1, 260, 170) + [
            FastaRecord(id="lone", seq=random_dna(rng, 280))
        ]
        result = assemble(reads)
        merged = result.merged_read_ids
        singlet_ids = {r.id for r in result.singlets}
        assert merged | singlet_ids == {r.id for r in reads}
        assert merged & singlet_ids == set()

    def test_sequence_count_decreases(self):
        rng = random.Random(12)
        genome = random_dna(rng, 800)
        reads = tiled_reads(genome, 300, 180)
        result = assemble(reads)
        assert result.sequence_count() < len(reads)

    def test_error_tolerant_merge(self):
        rng = random.Random(13)
        genome = random_dna(rng, 500)
        a = list(genome[:300])
        a[50] = "A" if a[50] != "A" else "C"  # one sequencing error
        reads = [
            FastaRecord(id="a", seq="".join(a)),
            FastaRecord(id="b", seq=genome[180:]),
        ]
        result = assemble(reads)
        assert len(result.contigs) == 1

    def test_duplicate_ids_rejected(self):
        reads = [FastaRecord(id="a", seq="ACGT" * 30)] * 2
        with pytest.raises(ValueError, match="duplicate"):
            assemble(reads)

    def test_contig_requires_two_members(self):
        with pytest.raises(ValueError, match="two reads"):
            Contig(id="Contig1", seq="ACGT", members=("only",))

    def test_output_records_contigs_then_singlets(self):
        rng = random.Random(14)
        genome = random_dna(rng, 500)
        reads = tiled_reads(genome, 220, 140) + [
            FastaRecord(id="lone", seq=random_dna(rng, 300))
        ]
        result = assemble(reads)
        records = result.output_records
        assert records[0].id.startswith("Contig")
        assert records[-1].id == "lone"

    def test_custom_prefix(self):
        rng = random.Random(15)
        genome = random_dna(rng, 500)
        result = assemble(tiled_reads(genome, 220, 140), contig_prefix="C")
        assert result.contigs[0].id == "C1"

    def test_params_validation(self):
        with pytest.raises(ValueError):
            Cap3Params(min_overlap_length=0)
        with pytest.raises(ValueError):
            Cap3Params(min_identity=0.0)
        with pytest.raises(ValueError):
            Cap3Params(kmer_size=2)

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=10, deadline=None)
    def test_tiling_property(self, seed):
        # Any random genome tiled with overlapping windows reassembles
        # into exactly one contig containing all reads.
        rng = random.Random(seed)
        genome = random_dna(rng, 450)
        reads = tiled_reads(genome, 200, 120)
        result = assemble(reads)
        assert len(result.contigs) == 1
        assert len(result.contigs[0].members) == len(reads)
