"""Property-based tests for the WMS layer: DAX round-trips and planner
structural invariants over randomly generated workflows."""

from hypothesis import given, settings, strategies as st

from repro.wms.catalogs import (
    ReplicaCatalog,
    SiteCatalog,
    TransformationCatalog,
    TransformationEntry,
    osg_site,
    sandhills_site,
)
from repro.wms.dax import ADag, AbstractJob, File
from repro.wms.planner import PlannerOptions, plan

names = st.text(alphabet="abcdefghij_", min_size=1, max_size=8)


@st.composite
def random_adag(draw):
    """A random layered workflow with file-mediated dependencies."""
    n_layers = draw(st.integers(min_value=1, max_value=4))
    adag = ADag(name="rand")
    produced: list[File] = []
    file_counter = 0
    job_counter = 0
    externals = [File("ext_0.dat", size=draw(st.integers(0, 10**6)))]
    for layer in range(n_layers):
        layer_jobs = draw(st.integers(min_value=1, max_value=4))
        new_files = []
        for _ in range(layer_jobs):
            job = AbstractJob(
                id=f"job{job_counter}",
                transformation=draw(
                    st.sampled_from(["alpha", "beta", "gamma"])
                ),
                runtime=draw(st.floats(min_value=0.1, max_value=1000)),
            )
            job_counter += 1
            # Inputs: some mix of externals and earlier outputs.
            pool = externals + produced
            for f in draw(
                st.lists(st.sampled_from(pool), min_size=1, max_size=3,
                         unique_by=lambda f: f.name)
            ):
                job.add_input(f)
            # Outputs: fresh files.
            for _ in range(draw(st.integers(1, 2))):
                f = File(f"f_{file_counter}.dat",
                         size=draw(st.integers(0, 10**6)))
                file_counter += 1
                job.add_output(f)
                new_files.append(f)
            adag.add_job(job)
        produced.extend(new_files)
    return adag


def _catalogs():
    sites = SiteCatalog()
    sites.add(sandhills_site())
    sites.add(osg_site())
    tc = TransformationCatalog()
    for t in ("alpha", "beta", "gamma"):
        tc.add(TransformationEntry(name=t, installed_sites=frozenset({"sandhills"})))
    return sites, tc


@given(random_adag())
@settings(max_examples=60, deadline=None)
def test_dax_xml_roundtrip_property(adag):
    back = ADag.from_xml(adag.to_xml())
    assert set(back.jobs) == set(adag.jobs)
    assert back.edges() == adag.edges()
    for jid, job in adag.jobs.items():
        other = back.jobs[jid]
        assert other.transformation == job.transformation
        assert other.runtime == job.runtime
        assert [f.name for f in other.inputs()] == [
            f.name for f in job.inputs()
        ]
        assert [f.name for f in other.outputs()] == [
            f.name for f in job.outputs()
        ]


@given(random_adag(), st.integers(1, 5), st.booleans())
@settings(max_examples=60, deadline=None)
def test_planner_structural_invariants(adag, cluster_size, cleanup):
    sites, tc = _catalogs()
    rc = ReplicaCatalog()
    for f in adag.external_inputs():
        rc.add(f.name, f"file:///{f.name}")
    planned = plan(
        adag,
        site_name="osg",
        sites=sites,
        transformations=tc,
        replicas=rc,
        options=PlannerOptions(
            cluster_size=cluster_size, add_cleanup=cleanup, retries=2
        ),
    )
    dag = planned.dag

    # 1. Acyclic and complete topological order.
    order = dag.topological_order()
    assert len(order) == len(dag)

    # 2. Every abstract job maps to exactly one executable job.
    assert set(planned.job_map) == set(adag.jobs)
    for target in planned.job_map.values():
        assert target in dag.jobs

    # 3. One stage-in job per external input, upstream of its consumers.
    externals = {f.name for f in adag.external_inputs()}
    stage_ins = [n for n in dag.jobs if n.startswith("stage_in_")]
    assert len(stage_ins) == len(externals)

    # 4. Total compute runtime is conserved by clustering.
    compute_names = set(planned.job_map.values())
    compute_runtime = sum(dag.jobs[n].runtime for n in compute_names)
    abstract_runtime = sum(j.runtime for j in adag.jobs.values())
    assert abs(compute_runtime - abstract_runtime) < 1e-6

    # 5. Abstract dependencies survive the mapping.
    for parent, child in adag.edges():
        mp, mc = planned.job_map[parent], planned.job_map[child]
        if mp == mc:
            continue  # merged into one cluster: trivially ordered
        assert order.index(mp) < order.index(mc)

    # 6. On OSG every compute job carries the setup decoration.
    for name in compute_names:
        assert dag.jobs[name].needs_setup

    # 7. Cleanup jobs (if any) only ever follow their consumers.
    if cleanup:
        for name in dag.jobs:
            if name.startswith("cleanup_"):
                assert dag.parents(name)
                assert not dag.children(name)
