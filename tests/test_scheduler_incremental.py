"""The incremental scheduler rewrite, pinned against the legacy oracle.

The rewrite (persistent ready heap + pending-parent counters, see
``repro.dagman.scheduler``) claims *bit-identical behaviour* to the
pre-rewrite full-rescan loop preserved as
:class:`repro.dagman.legacy.LegacyRescanScheduler`. The hypothesis
properties here enforce that claim: arbitrary DAGs (width, depth,
priorities, retries, throttles, scripted failures) run through both
implementations on a scripted environment and on all three simulated
platforms, and the traces, bus event streams, final states, and wall
times must match exactly.

The rest of the module is regression tests for the three hot-path bugs
fixed alongside the rewrite:

* ``_submit_ready`` double-submitting under a reentrant (synchronous)
  ``on_complete``;
* ``_may_retry`` burning retry-policy budget as a side effect of being
  *asked*;
* (the engine-side fire-then-cancel bug lives in
  ``test_timing_regressions.py`` next to the other clock tests).
"""

from hypothesis import given, settings, strategies as st

from repro.dagman.dag import Dag, DagJob
from repro.dagman.events import JobAttempt, JobStatus
from repro.dagman.legacy import LegacyRescanScheduler
from repro.dagman.scheduler import DagmanScheduler, NodeState
from repro.observe.bus import EventBus, EventRecorder
from repro.resilience.retry import FixedDelayRetry, RetryPolicy
from repro.sim.cloud import CloudPlatform
from repro.sim.cluster import CampusCluster, CampusClusterConfig
from repro.sim.engine import Simulator
from repro.sim.grid import GridConfig, OpportunisticGrid
from repro.sim.rng import RngStreams


# ---------------------------------------------------------------------------
# Scripted environment (same shape as test_dagman_properties)
# ---------------------------------------------------------------------------


class ScriptedEnvironment:
    """Simulator-backed environment failing scripted (job, attempt) pairs."""

    def __init__(self, failures: set[tuple[str, int]]):
        self.sim = Simulator()
        self.failures = failures
        self.submissions: list[tuple[str, int]] = []

    @property
    def now(self):
        return self.sim.now

    def call_later(self, delay_s, fn):
        self.sim.schedule(delay_s, fn)

    def submit(self, job, on_complete, *, attempt=1):
        self.submissions.append((job.name, attempt))
        submit_time = self.now

        def finish():
            failed = (job.name, attempt) in self.failures
            on_complete(
                JobAttempt(
                    job_name=job.name,
                    transformation=job.transformation,
                    site="scripted",
                    machine="m",
                    attempt=attempt,
                    submit_time=submit_time,
                    setup_start=submit_time,
                    exec_start=submit_time,
                    exec_end=self.now,
                    status=JobStatus.FAILED if failed else JobStatus.SUCCEEDED,
                )
            )

        self.sim.schedule(job.runtime, finish)

    def run_until_complete(self):
        self.sim.run()


# ---------------------------------------------------------------------------
# DAG strategy: width, depth, priorities, retries, faults, throttles
# ---------------------------------------------------------------------------


@st.composite
def dag_case(draw):
    n = draw(st.integers(min_value=1, max_value=10))
    names = [f"n{i}" for i in range(n)]
    dag = Dag(name="eq")
    for name in names:
        dag.add_job(
            DagJob(
                name=name,
                transformation=draw(st.sampled_from(["blast", "cap3"])),
                runtime=draw(st.integers(min_value=1, max_value=60)),
                priority=draw(st.integers(min_value=-2, max_value=2)),
                needs_setup=draw(st.booleans()),
            )
        )
    # i -> j with i < j keeps it acyclic by construction.
    for i in range(n):
        for j in range(i + 1, n):
            if draw(st.integers(0, 3)) == 0:
                dag.add_edge(names[i], names[j])
    retries = draw(st.integers(min_value=0, max_value=2))
    failures = set()
    for name in names:
        for attempt in range(1, retries + 2):
            if draw(st.integers(0, 4)) == 0:
                failures.add((name, attempt))
    max_jobs = draw(st.one_of(st.none(), st.integers(1, 3)))
    policy = draw(
        st.sampled_from(
            [
                None,
                FixedDelayRetry(45.0, charge_evictions=False),
                RetryPolicy(budget=1),
            ]
        )
    )
    return dag, failures, retries, max_jobs, policy


def _run(scheduler_cls, dag, env_factory, *, max_jobs, retries, policy):
    bus = EventBus()
    recorder = EventRecorder(bus)
    env = env_factory(bus)
    scheduler = scheduler_cls(
        dag,
        env,
        max_jobs=max_jobs,
        default_retries=retries,
        bus=bus,
        retry_policy=policy,
    )
    result = scheduler.run()
    return result, recorder.events


def _assert_equivalent(new, legacy):
    new_result, new_events = new
    legacy_result, legacy_events = legacy
    assert new_result.states == legacy_result.states
    assert new_result.success == legacy_result.success
    assert new_result.wall_time == legacy_result.wall_time
    assert new_result.trace.attempts == legacy_result.trace.attempts
    assert new_events == legacy_events


@given(dag_case())
@settings(max_examples=100, deadline=None)
def test_equivalent_on_scripted_environment(case):
    dag, failures, retries, max_jobs, policy = case
    _assert_equivalent(
        _run(
            DagmanScheduler,
            dag,
            lambda bus: ScriptedEnvironment(failures),
            max_jobs=max_jobs,
            retries=retries,
            policy=policy,
        ),
        _run(
            LegacyRescanScheduler,
            dag,
            lambda bus: ScriptedEnvironment(failures),
            max_jobs=max_jobs,
            retries=retries,
            policy=policy,
        ),
    )


def _cluster_factory(seed):
    def factory(bus):
        return CampusCluster(
            Simulator(),
            CampusClusterConfig(group_slots=4),
            streams=RngStreams(seed=seed),
            bus=bus,
        )

    return factory


def _grid_factory(seed):
    def factory(bus):
        # Defaults include start failures and evictions, so this also
        # exercises requeues and the eviction accounting paths.
        return OpportunisticGrid(
            Simulator(), GridConfig(), streams=RngStreams(seed=seed), bus=bus
        )

    return factory


def _cloud_factory(seed):
    def factory(bus):
        return CloudPlatform(
            Simulator(), streams=RngStreams(seed=seed), bus=bus
        )

    return factory


@given(dag_case(), st.integers(min_value=0, max_value=2**16))
@settings(max_examples=25, deadline=None)
def test_equivalent_on_campus_cluster(case, seed):
    dag, _failures, retries, max_jobs, policy = case
    factory = _cluster_factory(seed)
    _assert_equivalent(
        _run(DagmanScheduler, dag, factory,
             max_jobs=max_jobs, retries=retries, policy=policy),
        _run(LegacyRescanScheduler, dag, factory,
             max_jobs=max_jobs, retries=retries, policy=policy),
    )


@given(dag_case(), st.integers(min_value=0, max_value=2**16))
@settings(max_examples=25, deadline=None)
def test_equivalent_on_opportunistic_grid(case, seed):
    dag, _failures, retries, max_jobs, policy = case
    factory = _grid_factory(seed)
    _assert_equivalent(
        _run(DagmanScheduler, dag, factory,
             max_jobs=max_jobs, retries=retries, policy=policy),
        _run(LegacyRescanScheduler, dag, factory,
             max_jobs=max_jobs, retries=retries, policy=policy),
    )


@given(dag_case(), st.integers(min_value=0, max_value=2**16))
@settings(max_examples=25, deadline=None)
def test_equivalent_on_cloud(case, seed):
    dag, _failures, retries, max_jobs, policy = case
    factory = _cloud_factory(seed)
    _assert_equivalent(
        _run(DagmanScheduler, dag, factory,
             max_jobs=max_jobs, retries=retries, policy=policy),
        _run(LegacyRescanScheduler, dag, factory,
             max_jobs=max_jobs, retries=retries, policy=policy),
    )


# ---------------------------------------------------------------------------
# Regression: reentrant on_complete must not double-submit
# ---------------------------------------------------------------------------


class SynchronousEnvironment:
    """Completes every attempt *inside* ``submit`` — the pathological
    reentrancy: ``on_complete`` runs ``_handle_completion`` (and a
    nested ``_submit_ready``) while the outer ``_submit_ready`` is
    still iterating its view of the ready set."""

    def __init__(self, failures: set[tuple[str, int]] | None = None):
        self.failures = failures or set()
        self.submissions: list[tuple[str, int]] = []

    @property
    def now(self):
        return 0.0

    def submit(self, job, on_complete, *, attempt=1):
        self.submissions.append((job.name, attempt))
        failed = (job.name, attempt) in self.failures
        on_complete(
            JobAttempt(
                job_name=job.name,
                transformation=job.transformation,
                site="sync",
                machine="m",
                attempt=attempt,
                submit_time=0.0,
                setup_start=0.0,
                exec_start=0.0,
                exec_end=0.0,
                status=JobStatus.FAILED if failed else JobStatus.SUCCEEDED,
            )
        )

    def run_until_complete(self):
        pass


def _parallel_dag(n=4):
    dag = Dag(name="sync")
    for i in range(n):
        dag.add_job(DagJob(name=f"p{i}", transformation="t"))
    return dag


def test_no_double_submit_under_synchronous_completion():
    env = SynchronousEnvironment()
    result = DagmanScheduler(_parallel_dag(), env).run()
    assert result.success
    assert sorted(env.submissions) == [(f"p{i}", 1) for i in range(4)]


def test_synchronous_completion_with_failures_and_retries():
    env = SynchronousEnvironment(failures={("p1", 1), ("p2", 1), ("p2", 2)})
    result = DagmanScheduler(_parallel_dag(), env, default_retries=1).run()
    assert not result.success
    assert result.states["p1"] is NodeState.DONE
    assert result.states["p2"] is NodeState.FAILED
    # Exactly the allowed attempts, each submitted once.
    assert sorted(env.submissions) == [
        ("p0", 1), ("p1", 1), ("p1", 2), ("p2", 1), ("p2", 2), ("p3", 1),
    ]


def test_legacy_oracle_preserves_the_double_submit_bug():
    """The oracle must stay bug-for-bug: its ``_submit_ready`` iterates
    a stale snapshot, so a synchronous completion re-submits an
    already-finished node."""
    env = SynchronousEnvironment()
    dag = _parallel_dag(2)
    LegacyRescanScheduler(dag, env).run()
    assert ("p1", 2) in env.submissions  # the historical double submit


# ---------------------------------------------------------------------------
# Regression: _may_retry must be a pure predicate
# ---------------------------------------------------------------------------


def _failed_attempt(name, attempt=1):
    return JobAttempt(
        job_name=name,
        transformation="t",
        site="s",
        machine="m",
        attempt=attempt,
        submit_time=0.0,
        setup_start=0.0,
        exec_start=0.0,
        exec_end=0.0,
        status=JobStatus.FAILED,
    )


def test_scales_without_rescans():
    """A few thousand jobs complete near-instantly; the legacy rescan
    loop made this size visibly quadratic. (The 10k/100k/1M tiers live
    in ``benchmarks/bench_engine_throughput.py``.)"""
    n, width = 3000, 50
    dag = Dag(name="scale")
    names = [f"s{i:05d}" for i in range(n)]
    for i, name in enumerate(names):
        dag.add_job(
            DagJob(name=name, transformation="t", runtime=1.0,
                   priority=i % 3)
        )
    for i in range(width, n):
        dag.add_edge(names[i - width], names[i])
    env = ScriptedEnvironment(failures=set())
    scheduler = DagmanScheduler(dag, env, max_jobs=width)
    result = scheduler.run()
    assert result.success
    assert len(result.trace) == n
    # Every heap entry was consumed exactly once: nothing left over,
    # nothing resubmitted.
    assert scheduler._ready_heap == []
    assert sorted(env.submissions) == [(name, 1) for name in names]


def test_may_retry_is_pure():
    dag = Dag()
    dag.add_job(DagJob(name="j", transformation="t", retries=5))
    scheduler = DagmanScheduler(
        dag,
        SynchronousEnvironment(failures={("j", a) for a in range(1, 10)}),
        retry_policy=RetryPolicy(budget=2),
    )
    scheduler.start()
    scheduler.environment.run_until_complete()
    # The budget capped requeues at 2 (attempts at 3) even though the
    # RETRY budget allowed 5.
    assert scheduler.states["j"] is NodeState.FAILED
    assert len(scheduler.trace.for_job("j")) == 3
    # Asking again (and again) must not change the answer or the count.
    before = dict(scheduler._failed_attempts)
    first = scheduler._may_retry("j", _failed_attempt("j", 3))
    second = scheduler._may_retry("j", _failed_attempt("j", 3))
    assert first == second
    assert scheduler._failed_attempts == before
