"""Tests for transparent gzip support across the sequence I/O layer."""

import gzip

from repro.bio.fasta import FastaRecord, read_fasta, write_fasta
from repro.bio.fastq import FastqRecord, read_fastq, write_fastq
from repro.blast.tabular import TabularHit, read_tabular, write_tabular
from repro.util.iolib import open_text_auto, write_text_auto


class TestAutoGzip:
    def test_plain_roundtrip(self, tmp_path):
        p = tmp_path / "x.txt"
        write_text_auto(p, "hello")
        with open_text_auto(p) as fh:
            assert fh.read() == "hello"

    def test_gz_roundtrip(self, tmp_path):
        p = tmp_path / "x.txt.gz"
        write_text_auto(p, "compressed hello")
        raw = p.read_bytes()
        assert raw[:2] == b"\x1f\x8b"  # gzip magic
        with open_text_auto(p) as fh:
            assert fh.read() == "compressed hello"

    def test_gz_actually_compresses(self, tmp_path):
        p = tmp_path / "big.txt.gz"
        write_text_auto(p, "A" * 100_000)
        assert p.stat().st_size < 10_000


class TestSequenceFormats:
    def test_fasta_gz_roundtrip(self, tmp_path):
        records = [FastaRecord(id=f"t{i}", seq="ACGT" * 50) for i in range(5)]
        path = tmp_path / "transcripts.fasta.gz"
        assert write_fasta(path, records) == 5
        back = list(read_fasta(path))
        assert [(r.id, r.seq) for r in back] == [
            (r.id, r.seq) for r in records
        ]

    def test_fastq_gz_roundtrip(self, tmp_path):
        records = [
            FastqRecord(id=f"r{i}", seq="ACGT", quality="IIII")
            for i in range(3)
        ]
        path = tmp_path / "reads.fastq.gz"
        assert write_fastq(path, records) == 3
        assert [r.id for r in read_fastq(path)] == ["r0", "r1", "r2"]

    def test_tabular_gz_roundtrip(self, tmp_path):
        hits = [
            TabularHit(
                qseqid=f"t{i}", sseqid="p", pident=99.0, length=100,
                mismatch=1, gapopen=0, qstart=1, qend=300, sstart=1,
                send=100, evalue=1e-30, bitscore=200.0,
            )
            for i in range(4)
        ]
        path = tmp_path / "alignments.out.gz"
        assert write_tabular(path, hits) == 4
        assert list(read_tabular(path)) == hits

    def test_external_gzip_readable(self, tmp_path):
        # A file gzipped by other tooling parses fine.
        path = tmp_path / "ext.fasta.gz"
        with gzip.open(path, "wt") as fh:
            fh.write(">a\nACGT\n")
        (record,) = read_fasta(path)
        assert record.seq == "ACGT"

    def test_blast2cap3_pipeline_on_gz_inputs(self, tmp_path):
        # The whole serial path accepts .gz inputs end to end.
        from repro.blast.tabular import read_tabular as rt
        from repro.core.blast2cap3 import blast2cap3_serial
        from repro.datagen.workload import generate_blast2cap3_workload

        wl = generate_blast2cap3_workload(n_proteins=4, seed=1)
        t_path = tmp_path / "t.fasta.gz"
        a_path = tmp_path / "a.out.gz"
        write_fasta(t_path, wl.transcripts)
        write_tabular(a_path, wl.hits)
        result = blast2cap3_serial(
            list(read_fasta(t_path)), list(rt(a_path))
        )
        assert result.output_count > 0
