"""Tests for the Fig. 1 pipeline-as-a-workflow."""

import pytest

from repro.bio.fasta import read_fasta, write_fasta
from repro.bio.fastq import write_fastq
from repro.core.pipeline_workflow import (
    PIPELINE_FINAL_LFN,
    build_pipeline_adag,
    run_pipeline_local,
)
from repro.datagen.proteins import random_protein_db
from repro.datagen.reads import ReadSimSpec, simulate_paired_reads
from repro.datagen.transcripts import TranscriptomeSpec, generate_transcriptome


class TestPipelineAdag:
    def test_structure(self):
        adag = build_pipeline_adag(4)
        assert len(adag) == 4 + 4  # 4 trims + 4 downstream stages
        edges = adag.edges()
        for lane in range(1, 5):
            assert (f"trim_{lane}", "assemble") in edges
        assert ("assemble", "reduce_redundancy") in edges
        assert ("reduce_redundancy", "blastx_align") in edges
        assert ("reduce_redundancy", "blast2cap3_merge") in edges
        assert ("blastx_align", "blast2cap3_merge") in edges

    def test_external_inputs(self):
        adag = build_pipeline_adag(2)
        externals = {f.name for f in adag.external_inputs()}
        assert externals == {"reads_1.fastq", "reads_2.fastq",
                             "proteins.fasta"}

    def test_final_output(self):
        adag = build_pipeline_adag(2)
        assert [f.name for f in adag.final_outputs()] == [PIPELINE_FINAL_LFN]

    def test_validates_clean(self):
        assert build_pipeline_adag(3).validate() == []

    def test_invalid_lanes(self):
        with pytest.raises(ValueError):
            build_pipeline_adag(0)

    def test_runtime_annotations(self):
        adag = build_pipeline_adag(2, runtimes={"trim_reads": 120.0})
        assert adag.jobs["trim_1"].runtime == 120.0


@pytest.fixture(scope="module")
def staged_pipeline(tmp_path_factory):
    tmp = tmp_path_factory.mktemp("pipeline")
    proteins = random_protein_db(3, seed=71, min_length=140, max_length=180)
    transcriptome = generate_transcriptome(
        proteins,
        TranscriptomeSpec(
            mean_fragments_per_gene=1.0, sigma_fragments=0.0,
            fragment_min_fraction=1.0, fragment_max_fraction=1.0,
            utr_length=0, error_rate=0.0, reverse_fraction=0.0,
        ),
        seed=72,
    )
    lanes = []
    for lane, record in enumerate(transcriptome.transcripts, start=1):
        reads = []
        for r1, r2 in simulate_paired_reads(
            record.seq,
            ReadSimSpec(coverage=10.0, fragment_mean=250, fragment_sd=15),
            seed=lane,
            id_prefix=f"L{lane}",
        ):
            reads.extend((r1, r2))
        path = tmp / f"lane_{lane}.fastq"
        write_fastq(path, reads)
        lanes.append(path)
    proteins_path = tmp / "proteins.fasta"
    write_fasta(proteins_path, proteins)
    return tmp, lanes, proteins_path, proteins, transcriptome


class TestPipelineLocalRun:
    def test_end_to_end(self, staged_pipeline, tmp_path):
        tmp, lanes, proteins_path, proteins, transcriptome = staged_pipeline
        result = run_pipeline_local(
            lanes, proteins_path, tmp_path / "work", max_workers=2
        )
        assert result.dagman.success, result.dagman.failed_jobs
        finals = list(read_fasta(result.final_output))
        assert finals
        # A well-behaved run recovers roughly one sequence per gene.
        assert len(finals) <= 2 * len(transcriptome.transcripts)

    def test_trims_ran_in_parallel_under_dagman(self, staged_pipeline,
                                                tmp_path):
        tmp, lanes, proteins_path, *_ = staged_pipeline
        result = run_pipeline_local(
            lanes, proteins_path, tmp_path / "work2", max_workers=2
        )
        trims = [
            a for a in result.dagman.trace.successful()
            if a.transformation == "trim_reads"
        ]
        assert len(trims) == len(lanes)
        # At least two trims overlapped in time.
        trims.sort(key=lambda a: a.exec_start)
        assert any(
            trims[i + 1].exec_start < trims[i].exec_end
            for i in range(len(trims) - 1)
        )

    def test_intermediate_artifacts_exist(self, staged_pipeline, tmp_path):
        tmp, lanes, proteins_path, *_ = staged_pipeline
        work = tmp_path / "work3"
        result = run_pipeline_local(lanes, proteins_path, work,
                                    max_workers=2)
        assert result.dagman.success
        assert (work / "transcripts.fasta").exists()
        assert (work / "alignments.out").exists()
