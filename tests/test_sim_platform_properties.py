"""Property-based tests over the platform simulators: any random bag of
jobs with a generous retry budget completes, with physically sensible
trace records, on every platform."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.dagman.dag import Dag, DagJob
from repro.dagman.scheduler import DagmanScheduler
from repro.sim.cloud import CloudConfig, CloudPlatform
from repro.sim.cluster import CampusCluster, CampusClusterConfig
from repro.sim.engine import Simulator
from repro.sim.grid import GridConfig, OpportunisticGrid
from repro.sim.rng import RngStreams
from repro.wms.statistics import critical_path


@st.composite
def job_bag(draw):
    n = draw(st.integers(min_value=1, max_value=25))
    runtimes = draw(
        st.lists(
            st.floats(min_value=1.0, max_value=20_000.0),
            min_size=n, max_size=n,
        )
    )
    needs_setup = draw(st.booleans())
    seed = draw(st.integers(min_value=0, max_value=10_000))
    dag = Dag()
    for i, rt in enumerate(runtimes):
        dag.add_job(
            DagJob(name=f"j{i}", transformation="work", runtime=rt,
                   retries=50, needs_setup=needs_setup)
        )
    return dag, seed


def _check_trace(result, dag):
    assert result.success
    for attempt in result.trace:
        assert (
            attempt.submit_time
            <= attempt.setup_start
            <= attempt.exec_start
            <= attempt.exec_end
        )
    succeeded = {a.job_name for a in result.trace.successful()}
    assert succeeded == set(dag.jobs)
    # Wall time can never beat the longest single payload's kickstart.
    if result.trace.successful():
        longest = max(
            a.kickstart_time for a in result.trace.successful()
        )
        assert result.trace.wall_time() >= longest - 1e-6


@given(job_bag())
@settings(max_examples=30, deadline=None)
def test_campus_completes_any_bag(case):
    dag, seed = case
    env = CampusCluster(
        Simulator(), CampusClusterConfig(), streams=RngStreams(seed=seed)
    )
    result = DagmanScheduler(dag, env).run()
    _check_trace(result, dag)
    assert not result.trace.failures()  # campus never fails


@given(job_bag())
@settings(max_examples=20, deadline=None)
def test_grid_completes_any_bag(case):
    dag, seed = case
    env = OpportunisticGrid(
        Simulator(), GridConfig(), streams=RngStreams(seed=seed)
    )
    result = DagmanScheduler(dag, env).run()
    _check_trace(result, dag)


@given(job_bag())
@settings(max_examples=20, deadline=None)
def test_cloud_completes_any_bag(case):
    dag, seed = case
    env = CloudPlatform(
        Simulator(), CloudConfig(), streams=RngStreams(seed=seed)
    )
    result = DagmanScheduler(dag, env).run()
    _check_trace(result, dag)
    assert env.billed_cost() > 0


class TestCriticalPath:
    def test_chain_critical_path(self):
        dag = Dag()
        for name, rt in (("a", 10), ("b", 5000), ("c", 10)):
            dag.add_job(DagJob(name=name, transformation="t", runtime=rt))
        dag.add_edge("a", "b")
        dag.add_edge("b", "c")
        env = CampusCluster(Simulator(), streams=RngStreams(seed=0))
        result = DagmanScheduler(dag, env).run()
        chain = critical_path(result.trace, dag)
        assert [a.job_name for a in chain] == ["a", "b", "c"]

    def test_fan_out_critical_path_is_heaviest_branch(self):
        dag = Dag()
        dag.add_job(DagJob(name="src", transformation="t", runtime=10))
        dag.add_job(DagJob(name="light", transformation="t", runtime=50))
        dag.add_job(DagJob(name="heavy", transformation="t", runtime=9000))
        dag.add_job(DagJob(name="sink", transformation="t", runtime=10))
        for mid in ("light", "heavy"):
            dag.add_edge("src", mid)
            dag.add_edge(mid, "sink")
        env = CampusCluster(Simulator(), streams=RngStreams(seed=0))
        result = DagmanScheduler(dag, env).run()
        names = [a.job_name for a in critical_path(result.trace, dag)]
        assert names == ["src", "heavy", "sink"]

    def test_paper_run_critical_path_is_heaviest_partition(self):
        from repro.core.workflow_factory import simulate_paper_run
        from repro.perfmodel.task_models import PaperTaskModel

        model = PaperTaskModel()
        result, planned = simulate_paper_run(10, "sandhills", seed=1,
                                             model=model)
        chain = critical_path(result.trace, planned.dag)
        cap3_steps = [a for a in chain if a.transformation == "run_cap3"]
        assert cap3_steps, "critical path must cross a run_cap3 task"
        heaviest = max(model.partition_runtimes(10))
        # The path's cap3 step is (close to) the heaviest partition.
        assert max(a.kickstart_time for a in cap3_steps) > 0.6 * heaviest

    def test_empty_trace(self):
        from repro.dagman.events import WorkflowTrace

        assert critical_path(WorkflowTrace(), Dag()) == []
