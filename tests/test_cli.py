"""Tests for the command-line tools (plan/run/status/statistics/analyzer
and the blast2cap3 driver)."""

import pytest

from repro.bio.fasta import read_fasta, write_fasta
from repro.blast.tabular import write_tabular
from repro.core.cli import main as blast2cap3_main
from repro.datagen.transcripts import TranscriptomeSpec
from repro.datagen.workload import generate_blast2cap3_workload
from repro.wms.cli import (
    main_analyzer,
    main_plan,
    main_run,
    main_statistics,
    main_status,
)


@pytest.fixture(scope="module")
def submit_dir(tmp_path_factory):
    d = tmp_path_factory.mktemp("submit")
    rc = main_plan(["--submit-dir", str(d), "-n", "20", "--site", "sandhills"])
    assert rc == 0
    rc = main_run(["--submit-dir", str(d), "--seed", "1"])
    assert rc == 0
    return d


class TestPegasusStyleCli:
    def test_plan_writes_artifacts(self, submit_dir):
        assert (submit_dir / "workflow.dax").exists()
        assert (submit_dir / "workflow.dag").exists()
        assert (submit_dir / "plan.json").exists()
        dag_text = (submit_dir / "workflow.dag").read_text()
        assert "JOB run_cap3_1 run_cap3.sub" in dag_text

    def test_run_writes_trace(self, submit_dir):
        assert (submit_dir / "trace.jsonl").exists()

    def test_status(self, submit_dir, capsys):
        assert main_status(["--submit-dir", str(submit_dir)]) == 0
        out = capsys.readouterr().out
        assert "jobs done (100.0%)" in out

    def test_statistics(self, submit_dir, capsys):
        assert main_statistics(["--submit-dir", str(submit_dir)]) == 0
        out = capsys.readouterr().out
        assert "Workflow wall time" in out
        assert "run_cap3" in out

    def test_analyzer_on_success(self, submit_dir, capsys):
        assert main_analyzer(["--submit-dir", str(submit_dir)]) == 0
        assert "succeeded" in capsys.readouterr().out

    def test_status_without_trace_exits_2(self, tmp_path):
        d = tmp_path / "fresh"
        main_plan(["--submit-dir", str(d), "-n", "5"])
        with pytest.raises(SystemExit) as exc:
            main_status(["--submit-dir", str(d)])
        assert exc.value.code == 2

    def test_osg_plan_and_run(self, tmp_path, capsys):
        d = tmp_path / "osg"
        assert main_plan(["--submit-dir", str(d), "-n", "10",
                          "--site", "osg"]) == 0
        assert main_run(["--submit-dir", str(d), "--seed", "2"]) == 0
        out = capsys.readouterr().out
        assert "succeeded" in out


@pytest.fixture(scope="module")
def real_inputs(tmp_path_factory):
    tmp = tmp_path_factory.mktemp("inputs")
    wl = generate_blast2cap3_workload(
        n_proteins=6,
        spec=TranscriptomeSpec(mean_fragments_per_gene=2.5,
                               noise_transcripts=2, error_rate=0.002),
        seed=88,
    )
    transcripts = tmp / "transcripts.fasta"
    alignments = tmp / "alignments.out"
    write_fasta(transcripts, wl.transcripts)
    write_tabular(alignments, wl.hits)
    return transcripts, alignments


class TestBlast2Cap3Cli:
    def test_serial_mode(self, real_inputs, tmp_path, capsys):
        transcripts, alignments = real_inputs
        out = tmp_path / "merged.fasta"
        rc = blast2cap3_main([
            "--transcripts", str(transcripts),
            "--alignments", str(alignments),
            "--output", str(out),
            "--serial",
        ])
        assert rc == 0
        assert out.exists()
        assert "reduction" in capsys.readouterr().out

    def test_workflow_mode_matches_serial(self, real_inputs, tmp_path):
        transcripts, alignments = real_inputs
        serial_out = tmp_path / "serial.fasta"
        wf_out = tmp_path / "workflow.fasta"
        blast2cap3_main([
            "--transcripts", str(transcripts),
            "--alignments", str(alignments),
            "--output", str(serial_out), "--serial",
        ])
        rc = blast2cap3_main([
            "--transcripts", str(transcripts),
            "--alignments", str(alignments),
            "--output", str(wf_out),
            "-n", "3", "--workers", "2",
            "--workdir", str(tmp_path / "scratch"),
        ])
        assert rc == 0
        serial_records = {(r.id, r.seq) for r in read_fasta(serial_out)}
        wf_records = {(r.id, r.seq) for r in read_fasta(wf_out)}
        assert serial_records == wf_records
