"""Tests for the affine-gap (Gotoh) alignment kernels."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.bio.affine import (
    affine_align,
    affine_global,
    affine_local,
    affine_overlap,
)
from repro.bio.alignment import (
    AlignmentMode,
    global_align,
    local_align,
)
from repro.bio.matrices import blosum62, dna_matrix

dna = st.text(alphabet="ACGT", min_size=1, max_size=40)


class TestAffineGlobal:
    def test_identical(self):
        res = affine_global("MEDLKV", "MEDLKV")
        assert res.identity == 1.0
        assert res.score == sum(blosum62().score(c, c) for c in "MEDLKV")

    def test_one_long_gap_beats_two_short(self):
        # A 2-gap costs open+extend; two 1-gaps cost 2*open.
        m = dna_matrix(match=2, mismatch=-7)
        res = affine_global(
            "AACCGGTT", "AAGGTT", matrix=m, gap_open=-5, gap_extend=-1
        )
        # Expect one contiguous 2-base gap in b's row.
        assert "--" in res.aligned_b
        assert res.score == 6 * 2 + (-5) + (-1)

    def test_empty_vs_nonempty(self):
        res = affine_global("", "ACG", matrix=dna_matrix(),
                            gap_open=-5, gap_extend=-1)
        assert res.score == -5 - 1 - 1
        assert res.aligned_a == "---"

    def test_both_empty(self):
        res = affine_global("", "")
        assert res.score == 0
        assert res.length == 0

    def test_validation(self):
        with pytest.raises(ValueError, match="negative"):
            affine_global("A", "A", gap_open=0)
        with pytest.raises(ValueError, match="no more than"):
            affine_global("A", "A", gap_open=-2, gap_extend=-5)

    @given(dna, dna)
    @settings(max_examples=40, deadline=None)
    def test_reconstruction(self, a, b):
        res = affine_global(a, b, matrix=dna_matrix(), gap_open=-5,
                            gap_extend=-1)
        assert res.aligned_a.replace("-", "") == a
        assert res.aligned_b.replace("-", "") == b

    @given(dna, dna)
    @settings(max_examples=40, deadline=None)
    def test_equals_linear_when_open_equals_extend(self, a, b):
        m = dna_matrix()
        affine = affine_global(a, b, matrix=m, gap_open=-4, gap_extend=-4)
        linear = global_align(a, b, matrix=m, gap=-4)
        assert affine.score == linear.score

    @given(dna, dna)
    @settings(max_examples=40, deadline=None)
    def test_never_below_linear_with_extend_cost(self, a, b):
        # Affine with extend cheaper than open can only help.
        m = dna_matrix()
        affine = affine_global(a, b, matrix=m, gap_open=-4, gap_extend=-1)
        linear = global_align(a, b, matrix=m, gap=-4)
        assert affine.score >= linear.score

    @given(dna, dna)
    @settings(max_examples=40, deadline=None)
    def test_score_matches_alignment_rescoring(self, a, b):
        m = dna_matrix()
        open_, extend = -5, -2
        res = affine_global(a, b, matrix=m, gap_open=open_, gap_extend=extend)
        score = 0
        in_gap_a = in_gap_b = False
        for x, y in zip(res.aligned_a, res.aligned_b):
            if x == "-":
                score += extend if in_gap_a else open_
                in_gap_a, in_gap_b = True, False
            elif y == "-":
                score += extend if in_gap_b else open_
                in_gap_b, in_gap_a = True, False
            else:
                score += m.score(x, y)
                in_gap_a = in_gap_b = False
        assert score == res.score


class TestAffineLocal:
    def test_finds_embedded_match(self):
        res = affine_local(
            "TTTTACGTACGTTTTT", "GGGGACGTACGGGG",
            matrix=dna_matrix(), gap_open=-5, gap_extend=-2,
        )
        assert res.aligned_a == "ACGTACG"
        assert res.identity == 1.0

    def test_no_positive_segment(self):
        res = affine_local("AAAA", "TTTT", matrix=dna_matrix())
        assert res.score == 0
        assert res.length == 0

    @given(dna, dna)
    @settings(max_examples=40, deadline=None)
    def test_local_geq_zero_and_spans_reconstruct(self, a, b):
        res = affine_local(a, b, matrix=dna_matrix(), gap_open=-5,
                           gap_extend=-2)
        assert res.score >= 0
        assert a[res.a_start:res.a_end] == res.aligned_a.replace("-", "")
        assert b[res.b_start:res.b_end] == res.aligned_b.replace("-", "")

    @given(dna, dna)
    @settings(max_examples=40, deadline=None)
    def test_matches_linear_sw_when_uniform(self, a, b):
        m = dna_matrix()
        affine = affine_local(a, b, matrix=m, gap_open=-3, gap_extend=-3)
        linear = local_align(a, b, matrix=m, gap=-3)
        assert affine.score == linear.score


class TestAffineOverlap:
    def test_clean_dovetail(self):
        a = "TTTTTTTTACGTACGT"
        b = "ACGTACGTGGGGGGGG"
        res = affine_overlap(a, b)
        assert res.a_end == len(a)
        assert res.b_start == 0
        assert res.aligned_a == "ACGTACGT"

    def test_containment(self):
        a = "TTTTACGTACGTTTTT"
        b = "ACGTACGT"
        res = affine_overlap(a, b)
        assert res.b_start == 0 and res.b_end == len(b)

    def test_gapped_overlap_prefers_one_long_gap(self):
        # suffix of a matches prefix of b except b lost 3 bases.
        core = "ACGTACGTACGTACGTACGT"
        a = "TTTTTTTT" + core
        b = core[:8] + core[11:] + "GGGGGGGG"
        res = affine_overlap(a, b, gap_open=-6, gap_extend=-1)
        assert "---" in res.aligned_b
        assert res.mode is AlignmentMode.OVERLAP

    @given(dna.filter(lambda s: len(s) >= 12))
    @settings(max_examples=40, deadline=None)
    def test_split_reads_overlap(self, seq):
        third = len(seq) // 3
        a, b = seq[: 2 * third + 2], seq[third:]
        res = affine_overlap(a, b)
        assert res.a_end == len(a) or res.b_end == len(b)
        assert res.score >= 0 or len(seq) < 15
