"""Tests for the Fig. 1 transcriptome assembly pipeline."""

import pytest

from repro.core.pipeline import (
    PipelineConfig,
    StageReport,
    n50,
    run_transcriptome_pipeline,
)
from repro.datagen.proteins import random_protein_db
from repro.datagen.reads import ReadSimSpec, simulate_paired_reads
from repro.datagen.transcripts import TranscriptomeSpec, generate_transcriptome


class TestN50:
    def test_known_value(self):
        assert n50([2, 2, 2, 3, 3, 4, 8, 8]) == 8

    def test_single(self):
        assert n50([100]) == 100

    def test_empty(self):
        assert n50([]) == 0

    def test_uniform(self):
        assert n50([5, 5, 5, 5]) == 5


@pytest.fixture(scope="module")
def pipeline_inputs():
    proteins = random_protein_db(3, seed=21, min_length=150, max_length=200)
    transcriptome = generate_transcriptome(
        proteins,
        TranscriptomeSpec(mean_fragments_per_gene=1.0, sigma_fragments=0.0,
                          error_rate=0.0, reverse_fraction=0.0,
                          utr_length=0,
                          fragment_min_fraction=1.0,
                          fragment_max_fraction=1.0),
        seed=22,
    )
    reads = []
    for record in transcriptome.transcripts:
        for r1, r2 in simulate_paired_reads(
            record.seq,
            ReadSimSpec(coverage=12.0, fragment_mean=250, fragment_sd=15),
            seed=hash(record.id) % 2**31,
            id_prefix=record.id,
        ):
            reads.extend((r1, r2))
    return proteins, transcriptome, reads


class TestPipeline:
    def test_stage_sequence(self, pipeline_inputs):
        proteins, _, reads = pipeline_inputs
        result = run_transcriptome_pipeline(reads, proteins)
        names = [s.name for s in result.stages]
        assert names == [
            "preprocess(quality-trim+filter)",
            "assemble(overlap-layout-consensus)",
            "postprocess(redundancy-reduction)",
            "postprocess(blast2cap3)",
        ]

    def test_assembly_reduces_sequence_count(self, pipeline_inputs):
        proteins, _, reads = pipeline_inputs
        result = run_transcriptome_pipeline(reads, proteins)
        assemble_stage = result.stages[1]
        assert assemble_stage.output_count < assemble_stage.input_count

    def test_contigs_longer_than_reads(self, pipeline_inputs):
        proteins, _, reads = pipeline_inputs
        result = run_transcriptome_pipeline(reads, proteins)
        assert result.n50 > 100  # reads are 100 bp

    def test_quality_report_populated(self, pipeline_inputs):
        proteins, _, reads = pipeline_inputs
        result = run_transcriptome_pipeline(reads, proteins)
        assert result.quality is not None
        assert result.quality.total == len(reads)
        assert result.quality.passed > 0

    def test_without_proteins_skips_blast2cap3(self, pipeline_inputs):
        _, _, reads = pipeline_inputs
        result = run_transcriptome_pipeline(reads, protein_db=None)
        assert len(result.stages) == 3
        assert result.blast2cap3 is None

    def test_protein_guided_flag(self, pipeline_inputs):
        proteins, _, reads = pipeline_inputs
        config = PipelineConfig(protein_guided=False)
        result = run_transcriptome_pipeline(reads, proteins, config)
        assert len(result.stages) == 3

    def test_stage_report_validation(self):
        with pytest.raises(ValueError):
            StageReport(name="x", input_count=-1, output_count=0, seconds=0.0)

    def test_final_transcripts_nonempty(self, pipeline_inputs):
        proteins, _, reads = pipeline_inputs
        result = run_transcriptome_pipeline(reads, proteins)
        assert result.transcripts
        assert all(len(t.seq) > 0 for t in result.transcripts)
