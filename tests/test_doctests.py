"""Run the library's embedded doctests (the examples in docstrings are
part of the documented contract, so they must stay true)."""

import doctest
import importlib
import pkgutil

import pytest

import repro

# Modules with interactive examples worth executing. Kept explicit so a
# failing doctest names its module directly.
DOCTEST_MODULES = [
    "repro.util.units",
    "repro.util.tables",
    "repro.bio.seq",
    "repro.bio.fastq",
    "repro.bio.kmer",
    "repro.sim.engine",
    "repro.sim.rng",
    "repro.blast.filter",
    "repro.core.pipeline",
    "repro.wms.monitor",
    "repro.observe.bus",
    "repro.observe.metrics",
    "repro.observe.sampler",
]


@pytest.mark.parametrize("module_name", DOCTEST_MODULES)
def test_doctests(module_name):
    module = importlib.import_module(module_name)
    results = doctest.testmod(
        module, optionflags=doctest.NORMALIZE_WHITESPACE, verbose=False
    )
    assert results.failed == 0, f"{results.failed} doctest(s) failed"
    assert results.attempted > 0, f"no doctests found in {module_name}"


def test_every_public_module_imports():
    """Import every submodule — catches dead imports and syntax rot in
    modules the test suite might not otherwise touch."""
    count = 0
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        importlib.import_module(info.name)
        count += 1
    assert count > 40
