"""Tests for the campus-cluster and opportunistic-grid platform models."""

import pytest

from repro.dagman.dag import Dag, DagJob
from repro.dagman.events import JobStatus
from repro.dagman.scheduler import DagmanScheduler
from repro.sim.cluster import CampusCluster, CampusClusterConfig
from repro.sim.engine import Simulator
from repro.sim.failures import NO_FAILURES, FailureModel
from repro.sim.grid import GridConfig, GridSiteConfig, OpportunisticGrid
from repro.sim.machine import make_machines
from repro.sim.network import CAMPUS_SHARED_FS, WAN, NetworkModel
from repro.sim.rng import RngStreams


def bag_of_jobs(n, runtime=1000.0, **kwargs):
    dag = Dag(name="bag")
    for i in range(n):
        dag.add_job(
            DagJob(name=f"job{i}", transformation="work", runtime=runtime, **kwargs)
        )
    return dag


class TestMachines:
    def test_speed_jitter_bounds(self):
        rng = RngStreams(seed=1).stream("m")
        machines = make_machines(
            rng, site="s", count=50, speed_mean=1.0, speed_spread=0.2
        )
        assert all(0.8 <= m.speed <= 1.2 for m in machines)

    def test_software_prob_extremes(self):
        rng = RngStreams(seed=2).stream("m")
        full = make_machines(rng, site="s", count=10, software_prob=1.0)
        none = make_machines(rng, site="s", count=10, software_prob=0.0)
        assert all(len(m.software) == 3 for m in full)
        assert all(len(m.software) == 0 for m in none)

    def test_classad_exposes_software(self):
        rng = RngStreams(seed=3).stream("m")
        (m,) = make_machines(rng, site="s", count=1, software_prob=1.0)
        ad = m.classad()
        assert ad.get("has_python") is True
        assert ad.get("site") == "s"

    def test_validation(self):
        rng = RngStreams(seed=4).stream("m")
        with pytest.raises(ValueError):
            make_machines(rng, site="s", count=-1)
        with pytest.raises(ValueError):
            make_machines(rng, site="s", count=1, software_prob=2.0)


class TestNetwork:
    def test_transfer_time(self):
        net = NetworkModel(name="n", bandwidth_bytes_per_s=100.0, latency_s=1.0)
        assert net.transfer_time(1000) == 11.0

    def test_zero_bytes_pays_latency(self):
        assert WAN.transfer_time(0) == WAN.latency_s

    def test_campus_faster_than_wan(self):
        size = 100_000_000
        assert CAMPUS_SHARED_FS.transfer_time(size) < WAN.transfer_time(size)

    def test_validation(self):
        with pytest.raises(ValueError):
            NetworkModel(name="n", bandwidth_bytes_per_s=0)
        with pytest.raises(ValueError):
            WAN.transfer_time(-1)


class TestFailureModel:
    def test_no_failures_never_fires(self):
        rng = RngStreams(seed=5).stream("f")
        assert not any(NO_FAILURES.sample_start_failure(rng) for _ in range(100))
        assert NO_FAILURES.sample_eviction_time(rng) == float("inf")

    def test_start_failure_rate(self):
        rng = RngStreams(seed=6).stream("f")
        model = FailureModel(start_failure_prob=0.5)
        hits = sum(model.sample_start_failure(rng) for _ in range(2000))
        assert 850 < hits < 1150

    def test_eviction_mean(self):
        rng = RngStreams(seed=7).stream("f")
        model = FailureModel(eviction_rate_per_s=1 / 100.0)
        draws = [model.sample_eviction_time(rng) for _ in range(3000)]
        assert 90 < sum(draws) / len(draws) < 110

    def test_validation(self):
        with pytest.raises(ValueError):
            FailureModel(start_failure_prob=1.5)
        with pytest.raises(ValueError):
            FailureModel(eviction_rate_per_s=-1)


def run_on_campus(dag, *, config=None, seed=0):
    sim = Simulator()
    cluster = CampusCluster(
        sim, config or CampusClusterConfig(), streams=RngStreams(seed=seed)
    )
    return DagmanScheduler(dag, cluster).run(), cluster


class TestCampusCluster:
    def test_all_jobs_succeed_no_failures(self):
        result, _ = run_on_campus(bag_of_jobs(50))
        assert result.success
        assert result.trace.retry_count == 0
        assert all(a.status is JobStatus.SUCCEEDED for a in result.trace)

    def test_no_download_install_time(self):
        result, _ = run_on_campus(bag_of_jobs(20))
        assert all(a.download_install_time == 0.0 for a in result.trace)

    def test_waiting_time_small(self):
        result, _ = run_on_campus(bag_of_jobs(20))
        waits = [a.waiting_time for a in result.trace]
        assert max(waits) < CampusClusterConfig().queue_wait_max_s + 5

    def test_group_slots_bound_concurrency(self):
        config = CampusClusterConfig(group_slots=10)
        result, cluster = run_on_campus(bag_of_jobs(100), config=config)
        assert result.success
        assert cluster.peak_busy <= 10
        # 100 jobs of 1000s on 10 slots -> at least 10 waves.
        assert result.wall_time >= 10 * 1000 / 1.2

    def test_more_slots_faster(self):
        small, _ = run_on_campus(
            bag_of_jobs(100), config=CampusClusterConfig(group_slots=10)
        )
        big, _ = run_on_campus(
            bag_of_jobs(100), config=CampusClusterConfig(group_slots=100)
        )
        assert big.wall_time < small.wall_time

    def test_deterministic_given_seed(self):
        a, _ = run_on_campus(bag_of_jobs(30), seed=9)
        b, _ = run_on_campus(bag_of_jobs(30), seed=9)
        assert a.wall_time == b.wall_time

    def test_kickstart_reflects_node_speed(self):
        result, _ = run_on_campus(bag_of_jobs(30, runtime=1000.0))
        spread = CampusClusterConfig().speed_spread
        for a in result.trace:
            assert 1000 / (1 + spread) - 1 <= a.kickstart_time <= 1000 / (1 - spread) + 1

    def test_config_validation(self):
        with pytest.raises(ValueError):
            CampusClusterConfig(group_slots=0)
        assert CampusClusterConfig().total_cores == 1408


def run_on_grid(dag, *, config=None, seed=0):
    sim = Simulator()
    grid = OpportunisticGrid(
        sim, config or GridConfig(), streams=RngStreams(seed=seed)
    )
    return DagmanScheduler(dag, grid, default_retries=10).run(), grid


class TestOpportunisticGrid:
    def test_setup_jobs_pay_download_install(self):
        result, _ = run_on_grid(bag_of_jobs(40, needs_setup=True))
        assert result.success
        setups = [a.download_install_time for a in result.trace.successful()]
        assert min(setups) > 0
        mean = sum(setups) / len(setups)
        assert 150 < mean < 900  # calibrated around 420 s

    def test_no_setup_jobs_skip_download_install(self):
        result, _ = run_on_grid(bag_of_jobs(20, needs_setup=False))
        succeeded = result.trace.successful()
        assert all(a.download_install_time == 0.0 for a in succeeded)

    def test_waiting_time_erratic(self):
        result, _ = run_on_grid(bag_of_jobs(60, needs_setup=True))
        waits = [a.waiting_time for a in result.trace]
        assert max(waits) > 10 * min(waits)  # the paper's "unevenly changes"

    def test_failures_and_retries_happen(self):
        config = GridConfig(
            failures=FailureModel(
                start_failure_prob=0.2, eviction_rate_per_s=1 / 5000.0
            )
        )
        result, grid = run_on_grid(
            bag_of_jobs(60, runtime=2000.0, needs_setup=True), config=config
        )
        assert result.success  # retries absorb the failures
        assert result.trace.retry_count > 0
        assert grid.start_failure_count + grid.eviction_count > 0

    def test_evictions_recorded_as_evicted(self):
        config = GridConfig(
            failures=FailureModel(eviction_rate_per_s=1 / 500.0)
        )
        result, _ = run_on_grid(
            bag_of_jobs(30, runtime=3000.0), config=config
        )
        statuses = {a.status for a in result.trace}
        assert JobStatus.EVICTED in statuses

    def test_requirements_restrict_matching(self):
        dag = bag_of_jobs(
            10, requirements="has_python and has_biopython and has_cap3"
        )
        result, _ = run_on_grid(dag)
        for a in result.trace.successful():
            assert a.machine != "(unmatched)"

    def test_unsatisfiable_requirements_time_out(self):
        config = GridConfig(
            sites=(GridSiteConfig("barren", 20, software_prob=0.0),),
        )
        dag = bag_of_jobs(3, requirements="has_cap3")
        sim = Simulator()
        grid = OpportunisticGrid(sim, config, streams=RngStreams(seed=0))
        result = DagmanScheduler(dag, grid).run()
        assert not result.success
        assert all(
            a.error == "no matching resources in the pool"
            for a in result.trace
        )

    def test_faster_cores_than_campus(self):
        grid_result, _ = run_on_grid(bag_of_jobs(40, runtime=1000.0))
        campus_result, _ = run_on_campus(bag_of_jobs(40, runtime=1000.0))
        grid_ks = [a.kickstart_time for a in grid_result.trace.successful()]
        campus_ks = [a.kickstart_time for a in campus_result.trace.successful()]
        assert sum(grid_ks) / len(grid_ks) < sum(campus_ks) / len(campus_ks)

    def test_deterministic_given_seed(self):
        a, _ = run_on_grid(bag_of_jobs(30), seed=4)
        b, _ = run_on_grid(bag_of_jobs(30), seed=4)
        assert a.wall_time == b.wall_time

    def test_total_slots_default(self):
        assert GridConfig().with_sites().total_slots == 600
