"""Property-based tests: DAGMan invariants over random DAGs, random
failure scripts, and random throttles."""

from hypothesis import given, settings, strategies as st

from repro.dagman.dag import Dag, DagJob
from repro.dagman.events import JobAttempt, JobStatus
from repro.dagman.scheduler import DagmanScheduler, NodeState
from repro.sim.engine import Simulator


class RecordingEnvironment:
    """Deterministic environment that records submission order and can
    fail scripted (job, attempt) pairs."""

    def __init__(self, failures: set[tuple[str, int]]):
        self.sim = Simulator()
        self.failures = failures
        self.submissions: list[tuple[str, int, float]] = []
        self.completed_at: dict[str, float] = {}

    @property
    def now(self):
        return self.sim.now

    def submit(self, job, on_complete, *, attempt=1):
        self.submissions.append((job.name, attempt, self.now))
        submit_time = self.now

        def finish():
            failed = (job.name, attempt) in self.failures
            if not failed:
                self.completed_at[job.name] = self.now
            on_complete(
                JobAttempt(
                    job_name=job.name,
                    transformation=job.transformation,
                    site="rec",
                    machine="m",
                    attempt=attempt,
                    submit_time=submit_time,
                    setup_start=submit_time,
                    exec_start=submit_time,
                    exec_end=self.now,
                    status=JobStatus.FAILED if failed else JobStatus.SUCCEEDED,
                )
            )

        self.sim.schedule(job.runtime, finish)

    def run_until_complete(self):
        self.sim.run()


@st.composite
def random_dag_case(draw):
    """A random DAG, a failure script, retries, and a throttle."""
    n = draw(st.integers(min_value=1, max_value=12))
    names = [f"n{i}" for i in range(n)]
    dag = Dag()
    for i, name in enumerate(names):
        runtime = draw(st.integers(min_value=1, max_value=50))
        dag.add_job(DagJob(name=name, transformation="t", runtime=runtime))
    # Edges only i -> j with i < j keeps it acyclic by construction.
    for i in range(n):
        for j in range(i + 1, n):
            if draw(st.booleans()) and draw(st.integers(0, 3)) == 0:
                dag.add_edge(names[i], names[j])
    retries = draw(st.integers(min_value=0, max_value=2))
    failures = set()
    for name in names:
        for attempt in range(1, retries + 2):
            if draw(st.integers(0, 5)) == 0:
                failures.add((name, attempt))
    max_jobs = draw(st.one_of(st.none(), st.integers(1, 4)))
    return dag, failures, retries, max_jobs


@given(random_dag_case())
@settings(max_examples=120, deadline=None)
def test_dagman_invariants(case):
    dag, failures, retries, max_jobs = case
    env = RecordingEnvironment(failures)
    scheduler = DagmanScheduler(
        dag, env, max_jobs=max_jobs, default_retries=retries
    )
    result = scheduler.run()

    # 1. Every node reaches a terminal state.
    terminal = {NodeState.DONE, NodeState.FAILED, NodeState.UNRUNNABLE}
    assert set(result.states.values()) <= terminal

    # 2. success <=> all nodes DONE.
    assert result.success == all(
        s is NodeState.DONE for s in result.states.values()
    )

    # 3. Attempt counts respect the retry budget and scripted failures.
    for name in dag.jobs:
        attempts = result.trace.for_job(name)
        assert len(attempts) <= retries + 1
        for k, attempt in enumerate(attempts, start=1):
            assert attempt.attempt == k
            scripted_fail = (name, k) in failures
            assert attempt.status.is_success == (not scripted_fail)

    # 4. DONE iff the job's last attempt succeeded; FAILED iff every
    #    allowed attempt was scripted to fail.
    for name, state in result.states.items():
        attempts = result.trace.for_job(name)
        if state is NodeState.DONE:
            assert attempts and attempts[-1].status.is_success
        elif state is NodeState.FAILED:
            assert len(attempts) == retries + 1
            assert all(not a.status.is_success for a in attempts)
        else:  # UNRUNNABLE: never submitted, some ancestor failed
            assert not attempts
            assert _has_failed_ancestor(dag, name, result.states)

    # 5. No job submitted before all its parents completed.
    for name, attempt, submit_time in env.submissions:
        for parent in dag.parents(name):
            assert result.states[parent] is NodeState.DONE
            assert env.completed_at[parent] <= submit_time + 1e-9

    # 6. The throttle was respected at every instant: reconstruct
    #    in-flight counts from the trace.
    if max_jobs is not None:
        events = []
        for a in result.trace:
            events.append((a.submit_time, 1))
            events.append((a.exec_end, -1))
        events.sort(key=lambda e: (e[0], e[1]))
        running = peak = 0
        for _, delta in events:
            running += delta
            peak = max(peak, running)
        assert peak <= max_jobs


def _has_failed_ancestor(dag, name, states):
    stack = list(dag.parents(name))
    seen = set()
    while stack:
        node = stack.pop()
        if node in seen:
            continue
        seen.add(node)
        if states[node] is NodeState.FAILED:
            return True
        stack.extend(dag.parents(node))
    return False


@given(random_dag_case())
@settings(max_examples=60, deadline=None)
def test_rescue_resubmission_property(case):
    """After any run, rescuing and re-running with no failures finishes
    the workflow without re-executing DONE jobs."""
    dag, failures, retries, _ = case
    env = RecordingEnvironment(failures)
    scheduler = DagmanScheduler(dag, env, default_retries=retries)
    first = scheduler.run()

    done_jobs = {n for n, s in first.states.items() if s is NodeState.DONE}
    rescue = Dag(name="rescue")
    for job in dag.jobs.values():
        rescue.add_job(job)
    for parent, child in dag.edges():
        rescue.add_edge(parent, child)
    rescue.done = set(done_jobs)

    env2 = RecordingEnvironment(set())  # the transient failures cleared
    second = DagmanScheduler(rescue, env2).run()
    assert second.success
    resubmitted = {name for name, _, _ in env2.submissions}
    assert resubmitted.isdisjoint(done_jobs)
    assert resubmitted == set(dag.jobs) - done_jobs
