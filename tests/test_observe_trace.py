"""Tests for causal span tracing and online anomaly detection.

Covers the deterministic ID scheme, the span hierarchy and every
causal-link relation on scripted DAGs (released_by, retry_of,
rescue_continuation, journal_resume), the trace-derived critical path
cross-checked against the event-record makespan attribution
(hypothesis-pinned over seeds), the OTLP-JSON and Perfetto exports,
the anomaly detector catalog, the status view's ALERTS pane, and the
journal round-trip that lets a resumed run extend its pre-crash trace.
"""

import json

from hypothesis import given, settings, strategies as st

from repro.core.workflow_factory import simulate_paper_run
from repro.dagman.dag import Dag, DagJob
from repro.dagman.scheduler import DagmanScheduler
from repro.observe import (
    AnomalyMonitor,
    BlacklistStormDetector,
    EventBus,
    EventKind,
    EventRecorder,
    QueueWaitDetector,
    RunEvent,
    SloBurnDetector,
    SpanTracer,
    StatusView,
    StragglerDetector,
    critical_path_from_spans,
    derive_span_id,
    derive_trace_id,
    spans_from_events,
    to_otlp_json,
    to_perfetto_json,
    write_otlp_trace,
    write_perfetto_trace,
)
from repro.observe.analysis import attribute_makespan
from repro.resilience.journal import Journal, recover
from repro.sim.cluster import CampusCluster, CampusClusterConfig
from repro.sim.engine import Simulator
from repro.sim.failures import FailureModel
from repro.sim.grid import GridConfig, OpportunisticGrid
from repro.sim.rng import RngStreams


def chain_dag() -> Dag:
    """a -> b -> c: every release edge is unambiguous."""
    dag = Dag(name="chain")
    for name in ("a", "b", "c"):
        dag.add_job(
            DagJob(
                name=name,
                transformation=f"t_{name}",
                runtime=10.0,
                payload=lambda: None,
            )
        )
    dag.add_edge("a", "b")
    dag.add_edge("b", "c")
    return dag


def traced_chain_run(seed=7):
    bus = EventBus()
    recorder = EventRecorder(bus)
    tracer = SpanTracer(trace_id=derive_trace_id("chain"), bus=bus)
    env = CampusCluster(
        Simulator(),
        CampusClusterConfig(group_slots=2),
        streams=RngStreams(seed=seed),
        bus=bus,
    )
    result = DagmanScheduler(chain_dag(), env, bus=bus).run()
    assert result.success
    return result, recorder, tracer


def by_kind(spans, kind):
    return [s for s in spans if s.kind == kind]


def span_index(spans):
    return {s.span_id: s for s in spans}


class TestDeterministicIds:
    def test_id_shapes_and_stability(self):
        tid = derive_trace_id("anything")
        assert len(tid) == 32 and int(tid, 16) >= 0
        sid = derive_span_id(tid, "job:a", 0)
        assert len(sid) == 16 and int(sid, 16) >= 0
        assert derive_trace_id("anything") == tid
        assert derive_span_id(tid, "job:a", 0) == sid
        assert derive_span_id(tid, "job:a", 1) != sid
        assert derive_span_id(tid, "job:b", 0) != sid

    def test_run_root_is_a_pure_function_of_trace_id(self):
        # Two tracer instances that never saw each other's events agree
        # on the run-root id — the anchor a resumed process links to.
        a = SpanTracer(trace_id=derive_trace_id("x"))
        b = SpanTracer(trace_id=derive_trace_id("x"))
        assert a.run_root_span_id == b.run_root_span_id

    def test_same_run_yields_byte_identical_trace(self):
        _, _, tracer1 = traced_chain_run()
        _, _, tracer2 = traced_chain_run()
        ids1 = [(s.name, s.span_id, s.parent_span_id)
                for s in tracer1.finish()]
        ids2 = [(s.name, s.span_id, s.parent_span_id)
                for s in tracer2.finish()]
        assert ids1 == ids2


class TestSpanHierarchy:
    def test_buffered_until_finish(self):
        _, _, tracer = traced_chain_run()
        assert tracer.spans == []  # record-cheap: fold happens at finish
        spans = tracer.finish()
        assert spans and tracer.spans is spans

    def test_levels_and_parents(self):
        _, _, tracer = traced_chain_run()
        spans = tracer.finish()
        index = span_index(spans)
        (run,) = by_kind(spans, "run")
        (workflow,) = by_kind(spans, "workflow")
        assert run.parent_span_id is None
        assert workflow.parent_span_id == run.span_id
        jobs = by_kind(spans, "job")
        attempts = by_kind(spans, "attempt")
        assert sorted(s.attributes["job"] for s in jobs) == ["a", "b", "c"]
        assert len(attempts) == 3
        for job in jobs:
            assert job.parent_span_id == workflow.span_id
        for attempt in attempts:
            assert index[attempt.parent_span_id].kind == "job"
        for phase in by_kind(spans, "phase"):
            assert index[phase.parent_span_id].kind == "attempt"
        # all spans closed, clean run is all-ok
        assert all(s.end is not None for s in spans)
        assert all(s.status == "ok" for s in jobs + attempts)

    def test_released_by_links_mirror_the_dag(self):
        _, _, tracer = traced_chain_run()
        spans = tracer.finish()
        index = span_index(spans)
        jobs = {s.attributes["job"]: s for s in by_kind(spans, "job")}
        assert "released_by" not in jobs["a"].attributes  # a root job
        for child, parent in (("b", "a"), ("c", "b")):
            span = jobs[child]
            assert span.attributes["released_by"] == parent
            (link,) = [
                ln for ln in span.links
                if ln.attributes.get("relation") == "released_by"
            ]
            target = index[link.span_id]
            assert target.kind == "attempt"
            assert target.attributes["job"] == parent
            # causality: the parent attempt finished before (or exactly
            # when) the released child's span starts.
            assert target.end <= span.start + 1e-9


class TestRetryChains:
    def grid_run_with_failures(self, seed=3):
        bus = EventBus()
        recorder = EventRecorder(bus)
        tracer = SpanTracer(trace_id=derive_trace_id("flaky"), bus=bus)
        dag = Dag(name="flaky")
        for i in range(12):
            dag.add_job(DagJob(
                name=f"job{i}", transformation="work", runtime=2000.0,
                needs_setup=True,
            ))
        grid = OpportunisticGrid(
            Simulator(),
            GridConfig(failures=FailureModel(
                start_failure_prob=0.25, eviction_rate_per_s=1 / 4000.0,
            )),
            streams=RngStreams(seed=seed),
        bus=bus,
        )
        result = DagmanScheduler(dag, grid, default_retries=10,
                                 bus=bus).run()
        assert result.success
        assert result.trace.retry_count > 0
        return result, recorder, tracer

    def test_retry_of_links_chain_attempts(self):
        result, _, tracer = self.grid_run_with_failures()
        spans = tracer.finish()
        index = span_index(spans)
        retried = [
            s for s in by_kind(spans, "attempt")
            if int(s.attributes["attempt"]) > 1
        ]
        assert retried, "failure model produced no retries"
        for attempt in retried:
            (link,) = [
                ln for ln in attempt.links
                if ln.attributes.get("relation") == "retry_of"
            ]
            prior = index[link.span_id]
            assert prior.attributes["job"] == attempt.attributes["job"]
            assert int(prior.attributes["attempt"]) == (
                int(attempt.attributes["attempt"]) - 1
            )
            # the prior attempt failed or was evicted — never succeeded
            assert prior.status == "error"
            assert link.attributes["prior_status"] in (
                "failed", "evicted",
            )

    def test_eviction_to_retry_chain_is_explicit(self):
        result, _, tracer = self.grid_run_with_failures()
        spans = tracer.finish()
        index = span_index(spans)
        evicted = [
            s for s in by_kind(spans, "attempt")
            if s.attributes.get("status") == "evicted"
        ]
        assert evicted, "eviction rate produced no evictions"
        evicted_ids = {s.span_id for s in evicted}
        followers = [
            s for s in by_kind(spans, "attempt")
            for ln in s.links
            if ln.attributes.get("relation") == "retry_of"
            and ln.span_id in evicted_ids
        ]
        assert followers, "an evicted attempt was never retried"


class TestContinuationLinks:
    def _wf(self, kind, t, **detail):
        return RunEvent(kind, t, detail=detail)

    def test_rescue_round_links_previous_workflow_span(self):
        events = [
            self._wf(EventKind.WORKFLOW_START, 0.0, workflow="w"),
            self._wf(EventKind.WORKFLOW_END, 50.0, workflow="w",
                     success=False),
            self._wf(EventKind.RESCUE, 50.0, round=1, failed=2,
                     remaining=3),
            self._wf(EventKind.WORKFLOW_START, 51.0, workflow="w",
                     round=1),
            self._wf(EventKind.WORKFLOW_END, 90.0, workflow="w",
                     success=True),
        ]
        spans = spans_from_events(events, trace_id=derive_trace_id("r"))
        first, second = by_kind(spans, "workflow")
        (link,) = second.links
        assert link.attributes["relation"] == "rescue_continuation"
        assert link.span_id == first.span_id
        assert link.attributes["round"] == 1
        assert link.attributes["failed"] == 2

    def test_journal_resume_links_pre_crash_run_root(self):
        trace_id = derive_trace_id("crashy")
        events = [
            RunEvent(EventKind.JOURNAL_RESUME, 40.0, detail={
                "replayed": 7, "done": 3, "torn": False, "clock": 40.0,
                "trace_id": trace_id,
            }),
            self._wf(EventKind.WORKFLOW_START, 40.0, workflow="w"),
        ]
        tracer = SpanTracer(trace_id=trace_id)
        for event in events:
            tracer(event)
        spans = tracer.finish()
        (run,) = by_kind(spans, "run")
        (workflow,) = by_kind(spans, "workflow")
        assert run.attributes["resumed"] is True
        (link,) = workflow.links
        assert link.attributes["relation"] == "journal_resume"
        assert link.attributes["replayed"] == 7
        # the link targets the *deterministic* run-root id, which the
        # pre-crash process (same trace id) also had — no pre-crash
        # span data was needed to aim it.
        assert link.span_id == tracer.run_root_span_id
        assert link.span_id == SpanTracer(
            trace_id=trace_id
        ).run_root_span_id


class TestCriticalPathTiling:
    @settings(max_examples=6, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=50))
    def test_span_path_tiles_and_agrees_with_attribution(self, seed):
        bus = EventBus()
        tracer = SpanTracer(bus=bus)
        result, planned = simulate_paper_run(
            12, "osg", seed=seed, bus=bus
        )
        assert result.success
        cp = critical_path_from_spans(tracer.finish())
        at = attribute_makespan(result.trace, planned.dag)
        # exact tiling: the buckets sum to the makespan
        assert abs(sum(cp.buckets.values()) - cp.makespan_s) < 1e-6
        assert abs(cp.makespan_s - at.makespan_s) < 1e-6
        tolerance = max(1e-6, 0.001 * at.makespan_s)
        for bucket, value in at.buckets.items():
            assert abs(cp.buckets[bucket] - value) < tolerance, (
                f"seed {seed}: bucket {bucket} spans={cp.buckets[bucket]}"
                f" attribution={value}"
            )

    def test_empty_spans_give_zero_path(self):
        cp = critical_path_from_spans([])
        assert cp.makespan_s == 0.0
        assert set(cp.buckets) == {
            "waiting", "setup", "exec", "retry_lost", "idle"
        }
        assert all(v == 0.0 for v in cp.buckets.values())


class TestExports:
    def spans(self):
        _, _, tracer = traced_chain_run()
        return tracer.finish()

    def test_otlp_json_structure(self, tmp_path):
        spans = self.spans()
        path = write_otlp_trace(tmp_path / "trace.otlp.json", spans)
        otlp = json.loads(path.read_text())
        scope = otlp["resourceSpans"][0]["scopeSpans"][0]
        rows = scope["spans"]
        assert len(rows) == len(spans)
        ids = {r["spanId"] for r in rows}
        assert len(ids) == len(rows)
        for row in rows:
            assert len(row["traceId"]) == 32
            assert len(row["spanId"]) == 16
            assert int(row["endTimeUnixNano"]) >= int(
                row["startTimeUnixNano"]
            )
            if row.get("parentSpanId"):
                assert row["parentSpanId"] in ids
        # causal links survive export, relation attribute intact
        linked = [r for r in rows if r.get("links")]
        assert linked
        relations = {
            attr["value"]["stringValue"]
            for r in linked
            for ln in r["links"]
            for attr in ln["attributes"]
            if attr["key"] == "relation"
        }
        assert "released_by" in relations

    def test_perfetto_packets_balance(self, tmp_path):
        spans = self.spans()
        path = write_perfetto_trace(tmp_path / "trace.pftrace.json", spans)
        perfetto = json.loads(path.read_text())
        packets = perfetto["packet"]
        tracks = {
            p["trackDescriptor"]["uuid"]
            for p in packets if "trackDescriptor" in p
        }
        slices = [p for p in packets if "trackEvent" in p]
        assert tracks and slices
        assert all(
            p["trackEvent"]["trackUuid"] in tracks for p in slices
        )
        begins = [
            p for p in slices
            if p["trackEvent"]["type"] == "TYPE_SLICE_BEGIN"
        ]
        ends = [
            p for p in slices
            if p["trackEvent"]["type"] == "TYPE_SLICE_END"
        ]
        assert len(begins) == len(ends)
        assert all("timestamp" in p for p in slices)

    def test_to_json_helpers_match_writers(self, tmp_path):
        spans = self.spans()
        assert to_otlp_json(spans) == json.loads(
            write_otlp_trace(tmp_path / "a.json", spans).read_text()
        )
        assert to_perfetto_json(spans) == json.loads(
            write_perfetto_trace(tmp_path / "b.json", spans).read_text()
        )


class TestStragglerDetector:
    def events_with_slow_attempt(self, finish_at):
        submit = RunEvent(
            EventKind.SUBMIT, 0.0, job_name="slow",
            transformation="work", attempt=1,
            detail={"expected_s": 100.0},
        )
        start = RunEvent(
            EventKind.EXEC_START, 10.0, job_name="slow",
            transformation="work", site="osg", machine="m1", attempt=1,
        )
        # an unrelated event advances the clock past the deadline
        tick = RunEvent(EventKind.SAMPLE, finish_at,
                        detail={"busy": 1, "idle": 0})
        return [submit, start, tick]

    def test_seeded_slowdown_flagged_within_attempt(self):
        detector = StragglerDetector(factor=3.0)
        alerts = []
        # deadline = 10 + 3 * 100 = 310; clock reaches 400 mid-attempt
        for event in self.events_with_slow_attempt(400.0):
            alerts += detector.update(event)
        (alert,) = alerts
        assert alert.kind is EventKind.ANOMALY_STRAGGLER
        assert alert.job_name == "slow"
        assert alert.detail["expected_s"] == 100.0
        assert alert.detail["elapsed_s"] >= 300.0
        # one alert per attempt, even as the clock keeps advancing
        more = detector.update(
            RunEvent(EventKind.SAMPLE, 500.0, detail={})
        )
        assert more == []

    def test_fast_attempt_never_flagged(self):
        detector = StragglerDetector(factor=3.0)
        events = self.events_with_slow_attempt(200.0)  # before deadline
        alerts = []
        for event in events:
            alerts += detector.update(event)
        assert alerts == []


class TestDetectorUnits:
    def test_queue_wait_spike(self):
        detector = QueueWaitDetector(factor=3.0, min_samples=3,
                                     min_s=1.0)
        alerts = []
        t = 0.0
        for i in range(4):  # establish a ~10s baseline
            alerts += detector.update(RunEvent(
                EventKind.SUBMIT, t, job_name=f"j{i}", site="osg",
            ))
            alerts += detector.update(RunEvent(
                EventKind.MATCH, t + 10.0, job_name=f"j{i}", site="osg",
                detail={"queue_depth": 5},
            ))
            t += 100.0
        assert alerts == []
        alerts += detector.update(RunEvent(
            EventKind.SUBMIT, t, job_name="late", site="osg",
        ))
        alerts += detector.update(RunEvent(
            EventKind.MATCH, t + 500.0, job_name="late", site="osg",
            detail={"queue_depth": 40},
        ))
        (alert,) = alerts
        assert alert.kind is EventKind.ANOMALY_QUEUE_WAIT
        assert alert.detail["wait_s"] == 500.0
        assert alert.detail["queue_depth"] == 40

    def test_blacklist_storm_one_alert_per_window(self):
        detector = BlacklistStormDetector(threshold=3, window_s=100.0)
        alerts = []
        for i in range(5):
            alerts += detector.update(RunEvent(
                EventKind.BLACKLIST, float(i), site="osg",
                machine=f"m{i}", detail={},
            ))
        (alert,) = alerts  # hysteresis: one alert for the whole storm
        assert alert.kind is EventKind.ANOMALY_BLACKLIST_STORM
        assert alert.detail["count"] >= 3

    def test_slo_burn_fires_and_rearms(self):
        detector = SloBurnDetector(
            target_s=100.0, window=4, burn_threshold=0.5, min_count=2
        )
        def done(t, turnaround):
            return RunEvent(
                EventKind.SERVICE_WORKFLOW_DONE, t,
                detail={"tenant": "alice", "workflow": f"w{t}",
                        "succeeded": True, "turnaround_s": turnaround},
            )
        alerts = []
        alerts += detector.update(done(1.0, 500.0))  # miss
        alerts += detector.update(done(2.0, 500.0))  # miss -> burning
        (alert,) = alerts
        assert alert.kind is EventKind.ANOMALY_SLO_BURN
        assert alert.detail["tenant"] == "alice"
        assert alert.detail["burn_rate"] >= 0.5
        # still burning: no duplicate alert
        assert detector.update(done(3.0, 500.0)) == []
        # recovery re-arms, a fresh burn re-fires
        assert detector.update(done(4.0, 10.0)) == []
        assert detector.update(done(5.0, 10.0)) == []
        assert detector.update(done(6.0, 10.0)) == []
        assert detector.update(done(7.0, 500.0)) == []
        assert len(detector.update(done(8.0, 500.0))) == 1


class TestAnomalyMonitor:
    def test_alerts_reemitted_on_the_bus(self):
        bus = EventBus()
        recorder = EventRecorder(bus)
        monitor = AnomalyMonitor(
            bus, straggler=StragglerDetector(factor=3.0)
        )
        bus.emit(RunEvent(
            EventKind.SUBMIT, 0.0, job_name="slow",
            transformation="work", attempt=1,
            detail={"expected_s": 100.0},
        ))
        bus.emit(RunEvent(
            EventKind.EXEC_START, 10.0, job_name="slow",
            transformation="work", attempt=1,
        ))
        bus.emit(RunEvent(EventKind.SAMPLE, 400.0, detail={}))
        assert [a.kind for a in monitor.alerts] == [
            EventKind.ANOMALY_STRAGGLER
        ]
        assert [
            e.kind for e in recorder.of_kind(EventKind.ANOMALY_STRAGGLER)
        ] == [EventKind.ANOMALY_STRAGGLER]

    def test_own_output_never_feeds_back(self):
        bus = EventBus()
        monitor = AnomalyMonitor(bus)
        bus.emit(RunEvent(
            EventKind.ANOMALY_STRAGGLER, 1.0, job_name="x", detail={},
        ))
        bus.emit(RunEvent(EventKind.TRACE_SPAN, 1.0, detail={}))
        assert monitor.alerts == []

    def test_shared_bus_with_tracer_converges(self):
        bus = EventBus()
        tracer = SpanTracer(bus=bus, announce=True)
        monitor = AnomalyMonitor(bus)
        recorder = EventRecorder(bus)
        env = CampusCluster(
            Simulator(), CampusClusterConfig(group_slots=2),
            streams=RngStreams(seed=7), bus=bus,
        )
        result = DagmanScheduler(chain_dag(), env, bus=bus).run()
        assert result.success
        spans = tracer.finish()
        # announce mode folded online and emitted one trace.span per
        # closed span (closes during finish() happen off-bus only if
        # the bus went inactive — recorder keeps it active here).
        announced = recorder.of_kind(EventKind.TRACE_SPAN)
        assert len(announced) == len(spans)
        assert monitor.alerts == []  # clean run: nothing anomalous


class TestStatusAlertsPane:
    def test_alerts_render_and_overflow(self):
        view = StatusView()
        view.update(RunEvent(
            EventKind.WORKFLOW_START, 0.0, detail={"jobs": 3},
        ))
        for i in range(7):
            view.update(RunEvent(
                EventKind.ANOMALY_STRAGGLER, float(i),
                job_name=f"job{i}",
                detail={"elapsed_s": 400.0, "expected_s": 100.0},
            ))
        assert len(view.alerts) == 7
        rendered = view.render(max_alerts=5)
        assert "ALERTS (7)" in rendered
        assert "anomaly.straggler" in rendered
        assert "job6" in rendered  # latest alert shown
        assert "… 2 earlier" in rendered
        assert "job0" not in rendered  # overflowed

    def test_no_pane_without_alerts(self):
        view = StatusView()
        view.update(RunEvent(
            EventKind.WORKFLOW_START, 0.0, detail={"jobs": 1},
        ))
        assert "ALERTS" not in view.render()


class TestJournalTraceIdRoundTrip:
    def test_trace_id_survives_recovery(self, tmp_path):
        trace_id = derive_trace_id("pr10")
        journal = Journal(tmp_path / "j")
        journal.record_trace_id(trace_id)
        journal.close()
        recovered = recover(tmp_path / "j")
        assert recovered.trace_id == trace_id

    def test_re_recording_same_id_is_idempotent(self, tmp_path):
        trace_id = derive_trace_id("pr10")
        once = Journal(tmp_path / "once")
        once.record_trace_id(trace_id)
        once.close()
        twice = Journal(tmp_path / "twice")
        twice.record_trace_id(trace_id)
        twice.record_trace_id(trace_id)  # no-op: same id
        twice.close()
        assert (
            recover(tmp_path / "twice").replayed
            == recover(tmp_path / "once").replayed
        )
        # a resumed journal re-records the recovered id: still a no-op
        recovered = recover(tmp_path / "once")
        resumed = Journal(tmp_path / "once", resume=recovered)
        resumed.record_trace_id(trace_id)
        resumed.close()
        after = recover(tmp_path / "once")
        assert after.trace_id == trace_id
        assert after.replayed == recovered.replayed

    def test_fresh_journal_has_no_trace_id(self, tmp_path):
        journal = Journal(tmp_path / "j")
        journal.close()
        assert recover(tmp_path / "j").trace_id is None
