"""Tests for ClassAd matchmaking and the trace schema."""

import pytest

from repro.dagman.condor import ClassAd, evaluate_requirements, match
from repro.dagman.events import JobAttempt, JobStatus, WorkflowTrace


class TestClassAdEval:
    def machine(self, **attrs):
        return ClassAd(name="m", attributes=attrs)

    def test_simple_boolean(self):
        m = self.machine(has_python=True, has_cap3=False)
        assert evaluate_requirements("has_python", m)
        assert not evaluate_requirements("has_cap3", m)

    def test_conjunction(self):
        m = self.machine(has_python=True, has_biopython=True, has_cap3=True)
        assert evaluate_requirements(
            "has_python and has_biopython and has_cap3", m
        )

    def test_numeric_comparison(self):
        m = self.machine(memory_mb=4096)
        assert evaluate_requirements("memory_mb >= 2048", m)
        assert not evaluate_requirements("memory_mb >= 8192", m)

    def test_undefined_attribute_fails_closed(self):
        m = self.machine(speed=1.0)
        assert not evaluate_requirements("has_python", m)
        assert not evaluate_requirements("memory_mb >= 1", m)

    def test_none_requirements_always_true(self):
        assert evaluate_requirements(None, self.machine())

    def test_my_prefix_sees_own_ad(self):
        job = ClassAd(name="j", attributes={"image_size": 100})
        m = self.machine(disk=500)
        assert evaluate_requirements("disk >= my_image_size", m, my=job)

    def test_disallowed_syntax_rejected(self):
        m = self.machine()
        with pytest.raises(ValueError, match="disallowed"):
            evaluate_requirements("__import__('os')", m)
        with pytest.raises(ValueError, match="disallowed"):
            evaluate_requirements("(lambda: 1)()", m)


class TestMatch:
    def test_picks_satisfying_machine(self):
        job = ClassAd(name="j", requirements="has_cap3")
        machines = [
            ClassAd(name="m1", attributes={"has_cap3": False}),
            ClassAd(name="m2", attributes={"has_cap3": True}),
        ]
        assert match(job, machines).name == "m2"

    def test_rank_prefers_faster(self):
        job = ClassAd(name="j", rank="speed")
        machines = [
            ClassAd(name="slow", attributes={"speed": 1.0}),
            ClassAd(name="fast", attributes={"speed": 2.0}),
        ]
        assert match(job, machines).name == "fast"

    def test_two_sided_matching(self):
        job = ClassAd(name="j", attributes={"vo": "hcc"})
        machines = [
            ClassAd(name="picky", requirements="vo == 'atlas'"),
            ClassAd(name="open", requirements=None),
        ]
        assert match(job, machines).name == "open"

    def test_no_match_returns_none(self):
        job = ClassAd(name="j", requirements="has_cap3")
        machines = [ClassAd(name="m", attributes={"has_cap3": False})]
        assert match(job, machines) is None

    def test_tie_keeps_first(self):
        job = ClassAd(name="j")
        machines = [ClassAd(name="a"), ClassAd(name="b")]
        assert match(job, machines).name == "a"


def attempt(name="j", status=JobStatus.SUCCEEDED, attempt_no=1,
            submit=0.0, setup=10.0, start=20.0, end=120.0):
    return JobAttempt(
        job_name=name,
        transformation="t",
        site="s",
        machine="m",
        attempt=attempt_no,
        submit_time=submit,
        setup_start=setup,
        exec_start=start,
        exec_end=end,
        status=status,
    )


class TestJobAttempt:
    def test_derived_times_match_paper_statistics(self):
        a = attempt()
        assert a.waiting_time == 10.0
        assert a.download_install_time == 10.0
        assert a.kickstart_time == 100.0
        assert a.total_time == 120.0

    def test_ordering_enforced(self):
        with pytest.raises(ValueError, match="ordered"):
            attempt(setup=5.0, start=1.0)

    def test_attempt_number_validated(self):
        with pytest.raises(ValueError):
            attempt(attempt_no=0)

    def test_status_helper(self):
        assert JobStatus.SUCCEEDED.is_success
        assert not JobStatus.EVICTED.is_success
        assert not JobStatus.FAILED.is_success


class TestWorkflowTrace:
    def test_wall_time(self):
        trace = WorkflowTrace()
        trace.add(attempt(name="a", submit=0, setup=0, start=0, end=50))
        trace.add(attempt(name="b", submit=10, setup=10, start=10, end=200))
        assert trace.wall_time() == 200.0

    def test_empty_wall_time(self):
        assert WorkflowTrace().wall_time() == 0.0

    def test_successful_and_failures_partition(self):
        trace = WorkflowTrace()
        trace.add(attempt(name="a", status=JobStatus.FAILED))
        trace.add(attempt(name="a", status=JobStatus.SUCCEEDED, attempt_no=2))
        trace.add(attempt(name="b", status=JobStatus.EVICTED))
        assert len(trace.successful()) == 1
        assert len(trace.failures()) == 2
        assert trace.retry_count == 1

    def test_for_job_sorted_by_attempt(self):
        trace = WorkflowTrace()
        trace.add(attempt(name="a", attempt_no=2, status=JobStatus.SUCCEEDED))
        trace.add(attempt(name="a", attempt_no=1, status=JobStatus.FAILED))
        attempts = trace.for_job("a")
        assert [x.attempt for x in attempts] == [1, 2]

    def test_cumulative_kickstart_counts_successes_only(self):
        trace = WorkflowTrace()
        trace.add(attempt(name="a", start=0, setup=0, submit=0, end=100))
        trace.add(
            attempt(name="b", status=JobStatus.FAILED, start=0, setup=0,
                    submit=0, end=999)
        )
        assert trace.cumulative_kickstart() == 100.0
