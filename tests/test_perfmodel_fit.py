"""Tests for the in-code calibration fitter."""

import pytest

from repro.perfmodel.calibration import anchors
from repro.perfmodel.fit import calibration_loss, fit_model
from repro.perfmodel.task_models import PaperTaskModel


class TestLoss:
    def test_default_model_has_low_loss(self):
        assert calibration_loss(PaperTaskModel()) < 0.1

    def test_bad_shape_has_high_loss(self):
        # A near-uniform cluster distribution misses the plateau anchor
        # badly (partitions shrink linearly with n).
        bad = PaperTaskModel(size_sigma=0.2, seed=0)
        assert calibration_loss(bad) > 5 * calibration_loss(PaperTaskModel())

    def test_loss_components_relative(self):
        # Loss is scale-free: doubling the anchors with a doubled model
        # is as good as the original fit.
        model = PaperTaskModel()
        base = calibration_loss(model)
        assert base == pytest.approx(calibration_loss(model, anchors()))


class TestFit:
    @pytest.fixture(scope="class")
    def fit(self):
        return fit_model()

    def test_search_covers_grid(self, fit):
        assert fit.evaluated == 50
        assert len(fit.trail) == 50

    def test_best_is_sorted_first(self, fit):
        assert fit.trail[0][0] == pytest.approx(fit.loss)

    def test_shipped_defaults_in_top_two(self, fit):
        default = PaperTaskModel()
        top2 = {(sigma, seed) for _, sigma, seed in fit.trail[:2]}
        assert (default.size_sigma, default.seed) in top2

    def test_best_sigma_matches_default_shape(self, fit):
        assert fit.sigma == PaperTaskModel().size_sigma

    def test_best_model_satisfies_anchor_bands(self, fit):
        a = anchors()
        n10 = max(fit.model.partition_runtimes(10))
        assert abs(n10 - a.sandhills_n10_s) / a.sandhills_n10_s < 0.20
        for n in (100, 300, 500):
            m = max(fit.model.partition_runtimes(n))
            assert 0.6 * a.sandhills_plateau_s < m < 1.4 * a.sandhills_plateau_s
