"""Tests for the cloud platform model (the paper's future work)."""

import pytest

from repro.core.workflow_factory import environment_for, simulate_paper_run
from repro.dagman.dag import Dag, DagJob
from repro.dagman.events import JobStatus
from repro.dagman.scheduler import DagmanScheduler
from repro.sim.cloud import CloudConfig, CloudPlatform, InstanceType
from repro.sim.engine import Simulator
from repro.sim.failures import FailureModel
from repro.sim.rng import RngStreams


def bag(n, runtime=1000.0, retries=0):
    dag = Dag()
    for i in range(n):
        dag.add_job(DagJob(name=f"j{i}", transformation="work",
                           runtime=runtime, retries=retries))
    return dag


def run_cloud(dag, config=None, seed=0):
    sim = Simulator()
    cloud = CloudPlatform(sim, config or CloudConfig(),
                          streams=RngStreams(seed=seed))
    result = DagmanScheduler(dag, cloud).run()
    return result, cloud


class TestInstanceType:
    def test_validation(self):
        with pytest.raises(ValueError):
            InstanceType(name="x", speed=0, hourly_price=0.1)
        with pytest.raises(ValueError):
            InstanceType(name="x", speed=1, hourly_price=-1)


class TestCloudConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            CloudConfig(max_instances=0)
        with pytest.raises(ValueError):
            CloudConfig(billing_quantum_s=0)
        with pytest.raises(ValueError):
            CloudConfig(spot_discount=0)


class TestCloudPlatform:
    def test_all_jobs_succeed_on_demand(self):
        result, cloud = run_cloud(bag(40))
        assert result.success
        assert all(a.status is JobStatus.SUCCEEDED for a in result.trace)
        assert cloud.reclaim_count == 0

    def test_no_download_install(self):
        result, _ = run_cloud(bag(10))
        assert all(a.download_install_time == 0 for a in result.trace)

    def test_boot_time_appears_as_waiting(self):
        result, _ = run_cloud(bag(10))
        waits = [a.waiting_time for a in result.trace]
        assert all(w > 30 for w in waits)  # every job waited for a boot
        assert max(w for w in waits) < CloudConfig().boot_max_s + 10

    def test_warm_instances_reused(self):
        # Two sequential waves: the second wave should reuse warm VMs.
        dag = Dag()
        for i in range(5):
            dag.add_job(DagJob(name=f"a{i}", transformation="t", runtime=100))
            dag.add_job(DagJob(name=f"b{i}", transformation="t", runtime=100))
            dag.add_edge(f"a{i}", f"b{i}")
        result, cloud = run_cloud(dag)
        assert result.success
        assert len(cloud._instances) == 5  # not 10: wave 2 reused VMs
        b_waits = [
            a.waiting_time for a in result.trace if a.job_name.startswith("b")
        ]
        assert all(w < 10 for w in b_waits)  # no boot for wave 2

    def test_idle_instances_terminate(self):
        result, cloud = run_cloud(bag(3, runtime=50))
        sim_now = cloud.now
        assert cloud.running_instances == 0
        for inst in cloud._instances:
            assert inst.terminated_at is not None

    def test_max_instances_caps_fleet(self):
        config = CloudConfig(max_instances=4)
        result, cloud = run_cloud(bag(20), config=config)
        assert result.success
        assert cloud.peak_instances <= 4

    def test_billing_rounds_up_to_quantum(self):
        config = CloudConfig(idle_timeout_s=1.0)
        result, cloud = run_cloud(bag(1, runtime=10), config=config)
        # One instance, a few minutes provisioned, billed a full hour.
        price = config.instance_type.hourly_price
        assert cloud.billed_cost() == pytest.approx(price)
        assert cloud.instance_seconds() < 3600

    def test_more_jobs_cost_more(self):
        _, small = run_cloud(bag(5, runtime=2000))
        _, big = run_cloud(bag(50, runtime=2000))
        assert big.billed_cost() > small.billed_cost()

    def test_spot_reclaims_and_retries(self):
        config = CloudConfig(
            failures=FailureModel(eviction_rate_per_s=1 / 2000.0),
            spot_discount=0.3,
        )
        result, cloud = run_cloud(bag(30, runtime=3000, retries=10),
                                  config=config)
        assert result.success
        assert cloud.reclaim_count > 0
        assert any(a.status is JobStatus.EVICTED for a in result.trace)

    def test_deterministic(self):
        a, _ = run_cloud(bag(20), seed=5)
        b, _ = run_cloud(bag(20), seed=5)
        assert a.wall_time == b.wall_time


class TestPaperScaleCloud:
    def test_cloud_workflow_succeeds(self):
        result, planned = simulate_paper_run(100, "cloud", seed=1)
        assert result.success
        assert planned.site.name == "cloud"
        # Image carries the software: no setup decoration.
        assert not any(j.needs_setup for j in planned.dag.jobs.values())

    def test_cloud_cost_accounted(self):
        result, _ = simulate_paper_run(100, "cloud", seed=1)
        env = environment_for(result)
        assert isinstance(env, CloudPlatform)
        assert env.billed_cost() > 0
        assert env.instance_seconds() > 0

    def test_cloud_competitive_with_sandhills(self):
        cloud, _ = simulate_paper_run(300, "cloud", seed=1)
        campus, _ = simulate_paper_run(300, "sandhills", seed=1)
        # Boot time is minutes, not the grid's opportunistic hours: the
        # cloud plateau lands in the same band as the campus cluster.
        assert cloud.trace.wall_time() < 1.5 * campus.trace.wall_time()
