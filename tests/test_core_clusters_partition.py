"""Tests for protein-hit clustering and cluster partitioning."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.blast.tabular import TabularHit
from repro.core.clusters import ProteinCluster, best_hits, cluster_transcripts
from repro.core.partition import cluster_cost, partition_clusters


def hit(q, s, evalue=1e-20, bitscore=100.0):
    return TabularHit(
        qseqid=q, sseqid=s, pident=95.0, length=100, mismatch=5, gapopen=0,
        qstart=1, qend=300, sstart=1, send=100, evalue=evalue,
        bitscore=bitscore,
    )


class TestBestHits:
    def test_lowest_evalue_wins(self):
        hits = [hit("t1", "pA", evalue=1e-10), hit("t1", "pB", evalue=1e-30)]
        assert best_hits(hits)["t1"].sseqid == "pB"

    def test_bitscore_breaks_ties(self):
        hits = [
            hit("t1", "pA", evalue=1e-10, bitscore=90),
            hit("t1", "pB", evalue=1e-10, bitscore=110),
        ]
        assert best_hits(hits)["t1"].sseqid == "pB"

    def test_cutoff_filters(self):
        hits = [hit("t1", "pA", evalue=1e-3)]
        assert best_hits(hits, evalue_cutoff=1e-5) == {}

    def test_first_best_kept_on_exact_tie(self):
        hits = [hit("t1", "pA"), hit("t1", "pB")]
        assert best_hits(hits)["t1"].sseqid == "pA"

    def test_hit_exactly_at_cutoff_discarded(self):
        # The original blast2cap3 script pre-filters with a *strict*
        # comparison (evalue < cutoff); a hit sitting exactly on the
        # cutoff must not form a cluster.
        assert best_hits([hit("t1", "pA", evalue=1e-5)], evalue_cutoff=1e-5) == {}

    def test_hit_just_below_cutoff_kept(self):
        chosen = best_hits(
            [hit("t1", "pA", evalue=9.999e-6)], evalue_cutoff=1e-5
        )
        assert chosen["t1"].sseqid == "pA"

    def test_boundary_strictness_partitions_at_and_below(self):
        chosen = best_hits(
            [hit("t1", "pA", evalue=1e-5), hit("t2", "pA", evalue=0.999e-5)],
            evalue_cutoff=1e-5,
        )
        assert set(chosen) == {"t2"}


class TestClusterTranscripts:
    def test_transcripts_sharing_protein_grouped(self):
        hits = [hit("t1", "pA"), hit("t2", "pA"), hit("t3", "pB")]
        clusters, _ = cluster_transcripts(hits)
        by_protein = {c.protein_id: c for c in clusters}
        assert by_protein["pA"].transcript_ids == ("t1", "t2")
        assert by_protein["pB"].transcript_ids == ("t3",)

    def test_transcript_joins_only_best_cluster(self):
        hits = [
            hit("t1", "pA", evalue=1e-40),
            hit("t1", "pB", evalue=1e-10),
            hit("t2", "pB", evalue=1e-20),
        ]
        clusters, _ = cluster_transcripts(hits)
        by_protein = {c.protein_id: set(c.transcript_ids) for c in clusters}
        assert by_protein == {"pA": {"t1"}, "pB": {"t2"}}

    def test_unaligned_reported(self):
        hits = [hit("t1", "pA")]
        _, unaligned = cluster_transcripts(
            hits, known_transcripts=["t1", "t2", "t3"]
        )
        assert unaligned == ["t2", "t3"]

    def test_cluster_order_deterministic(self):
        hits = [hit("t1", "pB"), hit("t2", "pA"), hit("t3", "pB")]
        clusters, _ = cluster_transcripts(hits)
        assert [c.protein_id for c in clusters] == ["pB", "pA"]

    def test_mergeable_property(self):
        assert ProteinCluster("p", ("a", "b")).is_mergeable
        assert not ProteinCluster("p", ("a",)).is_mergeable

    def test_cluster_validation(self):
        with pytest.raises(ValueError):
            ProteinCluster("", ("a",))
        with pytest.raises(ValueError):
            ProteinCluster("p", ("a", "a"))


def mk_clusters(sizes):
    return [
        ProteinCluster(f"p{i}", tuple(f"t{i}_{j}" for j in range(s)))
        for i, s in enumerate(sizes)
    ]


class TestPartition:
    def test_round_robin_deals_in_order(self):
        clusters = mk_clusters([2, 2, 2, 2])
        groups = partition_clusters(clusters, 2, strategy="round_robin")
        assert [c.protein_id for c in groups[0]] == ["p0", "p2"]
        assert [c.protein_id for c in groups[1]] == ["p1", "p3"]

    def test_every_cluster_in_exactly_one_group(self):
        clusters = mk_clusters([3, 1, 4, 1, 5])
        groups = partition_clusters(clusters, 3)
        flat = [c.protein_id for g in groups for c in g]
        assert sorted(flat) == sorted(c.protein_id for c in clusters)

    def test_n_larger_than_clusters_gives_empty_groups(self):
        groups = partition_clusters(mk_clusters([2]), 5)
        assert len(groups) == 5
        assert sum(len(g) for g in groups) == 1

    def test_balanced_beats_round_robin_on_skew(self):
        # One giant cluster plus many small ones: LPT must isolate the
        # giant while round-robin stacks extra weight on its group.
        sizes = [40] + [2] * 30
        clusters = mk_clusters(sizes)

        def max_load(groups):
            return max(sum(cluster_cost(c) for c in g) for g in groups)

        rr = partition_clusters(clusters, 4, strategy="round_robin")
        bal = partition_clusters(clusters, 4, strategy="balanced")
        assert max_load(bal) <= max_load(rr)

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            partition_clusters([], 0)

    def test_invalid_strategy(self):
        with pytest.raises(ValueError, match="unknown strategy"):
            partition_clusters([], 1, strategy="random")  # type: ignore[arg-type]

    def test_cost_quadratic_shape(self):
        assert cluster_cost(10) > 10 * cluster_cost(1)
        with pytest.raises(ValueError):
            cluster_cost(-1)

    @given(
        st.lists(st.integers(min_value=1, max_value=20), max_size=40),
        st.integers(min_value=1, max_value=10),
    )
    @settings(max_examples=50)
    def test_partition_is_exact_cover(self, sizes, n):
        clusters = mk_clusters(sizes)
        for strategy in ("round_robin", "balanced"):
            groups = partition_clusters(clusters, n, strategy=strategy)
            assert len(groups) == n
            flat = sorted(c.protein_id for g in groups for c in g)
            assert flat == sorted(c.protein_id for c in clusters)
