"""Tests for the abstract→executable planner."""

import pytest

from repro.wms.catalogs import (
    ReplicaCatalog,
    SiteCatalog,
    TransformationCatalog,
    TransformationEntry,
    local_site,
    osg_site,
    sandhills_site,
)
from repro.wms.dax import ADag, AbstractJob, File
from repro.wms.planner import (
    PlannerOptions,
    PlanningError,
    SOFTWARE_REQUIREMENTS,
    plan,
)


def catalogs(transformation_names, *, installed=("sandhills", "local")):
    sites = SiteCatalog()
    sites.add(sandhills_site())
    sites.add(osg_site())
    sites.add(local_site())
    tc = TransformationCatalog()
    for name in transformation_names:
        tc.add(
            TransformationEntry(
                name=name, installed_sites=frozenset(installed)
            )
        )
    rc = ReplicaCatalog()
    return sites, tc, rc


def fan_out_adag(n=4):
    """split -> n workers -> merge, with one external input."""
    adag = ADag(name="fan")
    raw = File("raw.txt", size=1000)
    split = AbstractJob(id="split", transformation="split", runtime=10)
    split.add_input(raw)
    parts = []
    for i in range(n):
        part = File(f"part_{i}.txt", size=100)
        parts.append(part)
        split.add_output(part)
    adag.add_job(split)
    merge = AbstractJob(id="merge", transformation="merge", runtime=5)
    for i, part in enumerate(parts):
        out = File(f"out_{i}.txt", size=10)
        adag.add_job(
            AbstractJob(id=f"work_{i}", transformation="work", runtime=100)
            .add_input(part)
            .add_output(out)
        )
        merge.add_input(out)
    merge.add_output(File("final.txt", size=40))
    adag.add_job(merge)
    return adag


class TestPlanningBasics:
    def test_compute_jobs_and_edges_mapped(self):
        adag = fan_out_adag()
        sites, tc, rc = catalogs(("split", "work", "merge"))
        rc.add("raw.txt", "file:///raw.txt")
        planned = plan(adag, site_name="sandhills", sites=sites,
                       transformations=tc, replicas=rc)
        dag = planned.dag
        assert "split" in dag.jobs
        assert dag.parents("work_0") >= {"split"}
        assert "merge" in dag.children("work_0")

    def test_stage_in_added_for_external_inputs(self):
        adag = fan_out_adag()
        sites, tc, rc = catalogs(("split", "work", "merge"))
        rc.add("raw.txt", "file:///raw.txt")
        planned = plan(adag, site_name="sandhills", sites=sites,
                       transformations=tc, replicas=rc)
        assert "stage_in_raw_txt" in planned.dag.jobs
        assert "split" in planned.dag.children("stage_in_raw_txt")
        assert planned.dag.jobs["stage_in_raw_txt"].runtime > 0

    def test_stage_out_collects_finals(self):
        adag = fan_out_adag()
        sites, tc, rc = catalogs(("split", "work", "merge"))
        rc.add("raw.txt", "file:///raw.txt")
        planned = plan(adag, site_name="sandhills", sites=sites,
                       transformations=tc, replicas=rc)
        assert "stage_out_final" in planned.dag.jobs
        assert planned.dag.parents("stage_out_final") == {"merge"}

    def test_osg_stage_in_slower_than_campus(self):
        adag = fan_out_adag()
        sites, tc, rc = catalogs(("split", "work", "merge"))
        rc.add("raw.txt", "file:///raw.txt")
        campus = plan(adag, site_name="sandhills", sites=sites,
                      transformations=tc, replicas=rc)
        grid = plan(adag, site_name="osg", sites=sites,
                    transformations=tc, replicas=rc)
        assert (
            grid.dag.jobs["stage_in_raw_txt"].runtime
            > campus.dag.jobs["stage_in_raw_txt"].runtime
        )

    def test_missing_transformation_raises(self):
        adag = fan_out_adag()
        sites, tc, rc = catalogs(("split",))
        rc.add("raw.txt", "file:///raw.txt")
        with pytest.raises(PlanningError, match="transformations not in catalog"):
            plan(adag, site_name="sandhills", sites=sites,
                 transformations=tc, replicas=rc)

    def test_missing_replica_raises(self):
        adag = fan_out_adag()
        sites, tc, rc = catalogs(("split", "work", "merge"))
        with pytest.raises(PlanningError, match="without replicas"):
            plan(adag, site_name="sandhills", sites=sites,
                 transformations=tc, replicas=rc)

    def test_unknown_site_raises(self):
        adag = fan_out_adag()
        sites, tc, rc = catalogs(("split", "work", "merge"))
        rc.add("raw.txt", "file:///raw.txt")
        with pytest.raises(PlanningError, match="site"):
            plan(adag, site_name="xsede", sites=sites,
                 transformations=tc, replicas=rc)

    def test_retries_propagated(self):
        adag = fan_out_adag()
        sites, tc, rc = catalogs(("split", "work", "merge"))
        rc.add("raw.txt", "file:///raw.txt")
        planned = plan(adag, site_name="sandhills", sites=sites,
                       transformations=tc, replicas=rc,
                       options=PlannerOptions(retries=7))
        assert planned.dag.jobs["work_0"].retries == 7

    def test_options_validation(self):
        with pytest.raises(ValueError):
            PlannerOptions(retries=-1)
        with pytest.raises(ValueError):
            PlannerOptions(cluster_size=0)


class TestSetupDecoration:
    def test_sandhills_jobs_need_no_setup(self):
        adag = fan_out_adag()
        sites, tc, rc = catalogs(("split", "work", "merge"))
        rc.add("raw.txt", "file:///raw.txt")
        planned = plan(adag, site_name="sandhills", sites=sites,
                       transformations=tc, replicas=rc)
        assert not any(
            j.needs_setup for j in planned.dag.jobs.values()
        )

    def test_osg_jobs_decorated_with_setup(self):
        adag = fan_out_adag()
        sites, tc, rc = catalogs(("split", "work", "merge"))
        rc.add("raw.txt", "file:///raw.txt")
        planned = plan(adag, site_name="osg", sites=sites,
                       transformations=tc, replicas=rc)
        compute = [planned.dag.jobs[n] for n in planned.job_map.values()]
        assert all(j.needs_setup for j in compute)

    def test_setup_mode_never_uses_classads_instead(self):
        adag = fan_out_adag()
        sites, tc, rc = catalogs(("split", "work", "merge"))
        rc.add("raw.txt", "file:///raw.txt")
        # lint="warn": the preflight flags this configuration as
        # unsatisfiable on osg (CAT002) but must not block the plan.
        planned = plan(adag, site_name="osg", sites=sites,
                       transformations=tc, replicas=rc,
                       options=PlannerOptions(setup_mode="never",
                                              lint="warn"))
        compute = [planned.dag.jobs[n] for n in planned.job_map.values()]
        assert all(not j.needs_setup for j in compute)
        assert all(j.requirements == SOFTWARE_REQUIREMENTS for j in compute)
        assert planned.lint_report is not None
        assert [f.rule for f in planned.lint_report.errors()] == ["CAT002"]

    def test_setup_mode_never_fails_preflight_by_default(self):
        from repro.wms.planner import LintFailure

        adag = fan_out_adag()
        sites, tc, rc = catalogs(("split", "work", "merge"))
        rc.add("raw.txt", "file:///raw.txt")
        with pytest.raises(LintFailure) as excinfo:
            plan(adag, site_name="osg", sites=sites,
                 transformations=tc, replicas=rc,
                 options=PlannerOptions(setup_mode="never"))
        assert excinfo.value.report.by_rule("CAT002")
        assert "unsatisfiable" in str(excinfo.value)

    def test_transformation_installed_on_osg_skips_setup(self):
        adag = fan_out_adag()
        sites, tc, rc = catalogs(
            ("split", "work", "merge"), installed=("sandhills", "osg")
        )
        rc.add("raw.txt", "file:///raw.txt")
        planned = plan(adag, site_name="osg", sites=sites,
                       transformations=tc, replicas=rc)
        assert not planned.dag.jobs["work_0"].needs_setup


class TestCleanup:
    def test_cleanup_jobs_after_consumers(self):
        adag = fan_out_adag()
        sites, tc, rc = catalogs(("split", "work", "merge"))
        rc.add("raw.txt", "file:///raw.txt")
        planned = plan(adag, site_name="sandhills", sites=sites,
                       transformations=tc, replicas=rc,
                       options=PlannerOptions(add_cleanup=True))
        assert "cleanup_part_0_txt" in planned.dag.jobs
        assert planned.dag.parents("cleanup_part_0_txt") == {"work_0"}

    def test_finals_and_externals_not_cleaned(self):
        adag = fan_out_adag()
        sites, tc, rc = catalogs(("split", "work", "merge"))
        rc.add("raw.txt", "file:///raw.txt")
        planned = plan(adag, site_name="sandhills", sites=sites,
                       transformations=tc, replicas=rc,
                       options=PlannerOptions(add_cleanup=True))
        assert "cleanup_raw_txt" not in planned.dag.jobs
        assert "cleanup_final_txt" not in planned.dag.jobs


class TestClustering:
    def test_workers_merged_into_superjobs(self):
        adag = fan_out_adag(n=6)
        sites, tc, rc = catalogs(("split", "work", "merge"))
        rc.add("raw.txt", "file:///raw.txt")
        planned = plan(adag, site_name="sandhills", sites=sites,
                       transformations=tc, replicas=rc,
                       options=PlannerOptions(cluster_size=3))
        merged = [n for n in planned.dag.jobs if n.startswith("merge_work")]
        assert len(merged) == 2
        # Sequential super-job: runtimes add up.
        assert planned.dag.jobs[merged[0]].runtime == 300.0

    def test_cluster_preserves_dependencies(self):
        adag = fan_out_adag(n=6)
        sites, tc, rc = catalogs(("split", "work", "merge"))
        rc.add("raw.txt", "file:///raw.txt")
        planned = plan(adag, site_name="sandhills", sites=sites,
                       transformations=tc, replicas=rc,
                       options=PlannerOptions(cluster_size=3))
        for cname in (n for n in planned.dag.jobs if n.startswith("merge_work")):
            assert "split" in planned.dag.parents(cname)
            assert "merge" in planned.dag.children(cname)

    def test_job_map_points_to_clusters(self):
        adag = fan_out_adag(n=4)
        sites, tc, rc = catalogs(("split", "work", "merge"))
        rc.add("raw.txt", "file:///raw.txt")
        planned = plan(adag, site_name="sandhills", sites=sites,
                       transformations=tc, replicas=rc,
                       options=PlannerOptions(cluster_size=2))
        assert planned.job_map["work_0"].startswith("merge_work")
        assert planned.job_map["split"] == "split"

    def test_cluster_size_one_is_identity(self):
        adag = fan_out_adag(n=4)
        sites, tc, rc = catalogs(("split", "work", "merge"))
        rc.add("raw.txt", "file:///raw.txt")
        planned = plan(adag, site_name="sandhills", sites=sites,
                       transformations=tc, replicas=rc,
                       options=PlannerOptions(cluster_size=1))
        assert all(not n.startswith("merge_work") for n in planned.dag.jobs)

    def test_whole_dag_still_acyclic_and_runnable(self):
        adag = fan_out_adag(n=9)
        sites, tc, rc = catalogs(("split", "work", "merge"))
        rc.add("raw.txt", "file:///raw.txt")
        planned = plan(adag, site_name="sandhills", sites=sites,
                       transformations=tc, replicas=rc,
                       options=PlannerOptions(cluster_size=4))
        order = planned.dag.topological_order()
        assert len(order) == len(planned.dag)
