"""Tests for repro.bio.seq: complementation, translation, six frames."""

import pytest
from hypothesis import given, strategies as st

from repro.bio.seq import (
    CODON_TABLE,
    complement,
    gc_content,
    is_dna,
    is_protein,
    reverse_complement,
    six_frame_translations,
    translate,
)

dna = st.text(alphabet="ACGT", max_size=200)


class TestComplement:
    def test_basic(self):
        assert complement("ACGTN") == "TGCAN"

    def test_case_preserved(self):
        assert complement("acgt") == "tgca"

    def test_reverse_complement(self):
        assert reverse_complement("ATGC") == "GCAT"

    @given(dna)
    def test_involution(self, seq):
        assert reverse_complement(reverse_complement(seq)) == seq

    @given(dna)
    def test_length_preserved(self, seq):
        assert len(reverse_complement(seq)) == len(seq)


class TestCodonTable:
    def test_has_64_codons(self):
        assert len(CODON_TABLE) == 64

    def test_three_stops(self):
        stops = [c for c, aa in CODON_TABLE.items() if aa == "*"]
        assert sorted(stops) == ["TAA", "TAG", "TGA"]

    def test_met_start(self):
        assert CODON_TABLE["ATG"] == "M"

    def test_twenty_amino_acids(self):
        aas = set(CODON_TABLE.values()) - {"*"}
        assert len(aas) == 20


class TestTranslate:
    def test_simple(self):
        assert translate("ATGGCC") == "MA"

    def test_frames(self):
        assert translate("AATGGCC", frame=1) == "MA"

    def test_to_stop(self):
        assert translate("ATGTAAGGG", to_stop=True) == "M"
        assert translate("ATGTAAGGG") == "M*G"

    def test_partial_codon_ignored(self):
        assert translate("ATGGC") == "M"

    def test_n_gives_x(self):
        assert translate("ATGNNN") == "MX"

    def test_lowercase(self):
        assert translate("atggcc") == "MA"

    def test_bad_frame(self):
        with pytest.raises(ValueError, match="frame"):
            translate("ATG", frame=3)

    @given(dna)
    def test_length(self, seq):
        assert len(translate(seq)) == len(seq) // 3


class TestSixFrames:
    def test_frame_labels(self):
        frames = dict(six_frame_translations("ATGGCCTAA"))
        assert set(frames) == {1, 2, 3, -1, -2, -3}

    def test_forward_frame1(self):
        frames = dict(six_frame_translations("ATGGCC"))
        assert frames[1] == "MA"

    def test_reverse_frame_is_translation_of_revcomp(self):
        seq = "ATGGCCTAACGA"
        frames = dict(six_frame_translations(seq))
        assert frames[-1] == translate(reverse_complement(seq))

    @given(dna.filter(lambda s: len(s) >= 3))
    def test_every_frame_nonoverlapping_lengths(self, seq):
        frames = dict(six_frame_translations(seq))
        for offset in range(3):
            expected = (len(seq) - offset) // 3
            assert len(frames[offset + 1]) == expected
            assert len(frames[-(offset + 1)]) == expected

    def test_orf_recoverable_from_reverse_strand(self):
        # Put a known peptide on the reverse strand and find it in
        # one of the minus frames.
        from repro.bio.seq import reverse_complement as rc

        forward_orf = "ATGGAAGATCTT"  # MEDL
        seq = "CC" + rc(forward_orf) + "G"
        frames = dict(six_frame_translations(seq))
        assert any("MEDL" in p for f, p in frames.items() if f < 0)


class TestValidators:
    def test_is_dna(self):
        assert is_dna("ACGTNacgt")
        assert not is_dna("ACGU")
        assert is_dna("")

    def test_is_protein(self):
        assert is_protein("MEDLKVX*")
        assert not is_protein("MEDL1")

    def test_gc_content(self):
        assert gc_content("GGCC") == 1.0
        assert gc_content("AATT") == 0.0
        assert gc_content("ACGT") == 0.5
        assert gc_content("") == 0.0

    def test_gc_ignores_n(self):
        assert gc_content("GCNN") == 1.0
