"""Tests for the plots (gantt/utilization) and provenance modules."""

import pytest

from repro.core.workflow_factory import (
    build_blast2cap3_adag,
    simulate_paper_run,
)
from repro.dagman.events import JobAttempt, JobStatus, WorkflowTrace
from repro.wms.plots import gantt, utilization
from repro.wms.provenance import ProvenanceDB


def attempt(name, submit, setup, start, end, status=JobStatus.SUCCEEDED,
            attempt_no=1):
    return JobAttempt(
        job_name=name, transformation="t", site="s", machine="m",
        attempt=attempt_no, submit_time=submit, setup_start=setup,
        exec_start=start, exec_end=end, status=status,
    )


@pytest.fixture()
def small_trace():
    trace = WorkflowTrace()
    trace.add(attempt("a", 0, 200, 400, 900))
    trace.add(attempt("b", 0, 10, 10, 600))
    trace.add(attempt("c", 300, 320, 380, 900,
                      status=JobStatus.EVICTED))
    trace.add(attempt("c", 900, 905, 950, 1000, attempt_no=2))
    return trace


class TestGantt:
    def test_contains_all_rows_and_legend(self, small_trace):
        out = gantt(small_trace)
        assert "a[1]" in out
        assert "c[2]" in out
        assert "legend:" in out

    def test_phases_rendered(self, small_trace):
        out = gantt(small_trace)
        a_row = next(l for l in out.splitlines() if l.startswith("a[1]"))
        assert "." in a_row  # waiting
        assert "i" in a_row  # download/install
        assert "#" in a_row  # running

    def test_failure_marked(self, small_trace):
        out = gantt(small_trace)
        c1_row = next(l for l in out.splitlines() if l.startswith("c[1]"))
        assert "x" in c1_row

    def test_row_cap_with_omission_note(self):
        trace = WorkflowTrace()
        for i in range(60):
            trace.add(attempt(f"j{i}", 0, 0, 0, 10 + i))
        out = gantt(trace, max_rows=10)
        assert "omitted" in out
        # The longest attempt always survives the cut.
        assert "j59[1]" in out

    def test_empty(self):
        assert gantt(WorkflowTrace()) == "(empty trace)"

    def test_simulated_run_renders(self):
        result, _ = simulate_paper_run(10, "sandhills", seed=1)
        out = gantt(result.trace)
        assert "run_cap3_1[1]" in out


class TestUtilization:
    def test_peak_reported(self, small_trace):
        # a (400-900), b (10-600) and c's first attempt (380-900) all
        # overlap in the 400-600 window.
        out = utilization(small_trace, bins=20)
        assert "peak 3" in out

    def test_strip_length(self, small_trace):
        out = utilization(small_trace, bins=30)
        strip = out.splitlines()[1]
        assert len(strip) == 32  # 30 bins + 2 pipes

    def test_empty(self):
        assert utilization(WorkflowTrace()) == "(empty trace)"


@pytest.fixture()
def prov():
    adag = build_blast2cap3_adag(3)
    return adag, ProvenanceDB(adag)


class TestProvenance:
    def test_external_inputs_have_no_producer(self, prov):
        _, db = prov
        assert db.producer("transcripts.fasta") is None
        step = db.derivation("transcripts.fasta")
        assert step.transformation == "(external)"

    def test_immediate_derivation(self, prov):
        _, db = prov
        step = db.derivation("joined_2.fasta")
        assert step.producer == "run_cap3_2"
        assert "transcripts_dict.txt" in step.inputs
        assert "protein_2.txt" in step.inputs

    def test_full_lineage_reaches_externals(self, prov):
        _, db = prov
        sources = db.external_sources("merged_transcriptome.fasta")
        assert set(sources) == {"transcripts.fasta", "alignments.out"}

    def test_contributing_jobs_complete(self, prov):
        adag, db = prov
        jobs = set(db.contributing_jobs("merged_transcriptome.fasta"))
        assert jobs == set(adag.jobs)  # every job feeds the final output

    def test_lineage_leaf_first_order(self, prov):
        _, db = prov
        lineage = db.lineage("joined.fasta")
        names = [d.file for d in lineage]
        assert names.index("alignments.out") < names.index("protein_1.txt")
        assert names.index("protein_1.txt") < names.index("joined_1.fasta")
        assert names[-1] == "joined.fasta"

    def test_retrospective_provenance_after_run(self):
        result, planned = simulate_paper_run(3, "sandhills", seed=1)
        adag = build_blast2cap3_adag(3)
        db = ProvenanceDB(adag)
        recorded = db.record_run(result.trace)
        assert recorded >= len(adag.jobs)  # compute + auxiliary jobs
        step = db.derivation("joined_1.fasta")
        assert step.attempt is not None
        assert step.attempt.machine.startswith("sandhills")

    def test_report_renders(self, prov):
        _, db = prov
        text = db.report("merged_transcriptome.fasta")
        assert "concat_final" in text
        assert "external input" in text
