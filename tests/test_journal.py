"""The write-ahead journal: framing, torn tails, compaction, recovery.

The headline property lives in ``TestKillAnywhere``: for *every* crash
point in a journaled run, resuming from the journal reaches the same
final job states and the same executed-attempt set as the uninterrupted
run, and never re-executes a job whose success was journaled.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dagman.dag import Dag, DagJob
from repro.dagman.events import JobAttempt, JobStatus
from repro.dagman.scheduler import NodeState
from repro.observe.bus import EventBus
from repro.observe.events import EventKind, RunEvent, attempt_events
from repro.resilience.blacklist import Blacklist, BlacklistPolicy
from repro.resilience.faults import CrashFault, CrashInjected
from repro.resilience.journal import (
    Journal,
    JournalError,
    JournalState,
    decode_record,
    encode_record,
    reconcile_local,
    recover,
)
from repro.resilience.recovery import run_with_recovery
from repro.resilience.retry import FixedDelayRetry
from repro.sim.engine import Simulator
from repro.util import iolib
from repro.util.iolib import ensure_dir


# ---------------------------------------------------------------------------
# Scripted environment: outcome is a pure function of (job, attempt),
# so a crashed-and-resumed run and an uninterrupted run must agree.
# ---------------------------------------------------------------------------


class ScriptedEnvironment:
    def __init__(self, failures=frozenset(), *, bus=None, start_time=0.0):
        self.sim = Simulator(start_time=start_time)
        self.failures = set(failures)
        self.bus = bus
        self.submissions: list[tuple[str, int]] = []

    @property
    def now(self):
        return self.sim.now

    def call_later(self, delay_s, fn):
        self.sim.schedule(delay_s, fn)

    def submit(self, job, on_complete, *, attempt=1):
        self.submissions.append((job.name, attempt))
        submit_time = self.now

        def finish():
            failed = (job.name, attempt) in self.failures
            record = JobAttempt(
                job_name=job.name,
                transformation=job.transformation,
                site="scripted",
                machine="m0",
                attempt=attempt,
                submit_time=submit_time,
                setup_start=submit_time,
                exec_start=submit_time,
                exec_end=self.now,
                status=JobStatus.FAILED if failed else JobStatus.SUCCEEDED,
                error="scripted failure" if failed else None,
            )
            if self.bus is not None:
                for event in attempt_events(record):
                    self.bus.emit(event)
            on_complete(record)

        self.sim.schedule(job.runtime, finish)

    def run_until_complete(self):
        self.sim.run()


def diamond(retries=1):
    dag = Dag(name="diamond")
    for name in ("a", "b", "c", "d"):
        dag.add_job(
            DagJob(
                name=name, transformation="t", runtime=10.0,
                retries=retries,
            )
        )
    dag.add_edge("a", "b")
    dag.add_edge("a", "c")
    dag.add_edge("b", "d")
    dag.add_edge("c", "d")
    return dag


def run_journaled(failures, jdir, *, dag=None, crash=None,
                  snapshot_every=1000, max_rounds=2, resume=None,
                  retries=1, retry_delay=5.0, close=True):
    """One journaled run (or resumed continuation); returns
    (outcome, env, journal)."""
    bus = EventBus()
    journal = Journal(
        jdir, bus=bus, snapshot_every=snapshot_every, crash=crash,
        resume=resume,
    )
    env = ScriptedEnvironment(
        failures, bus=bus,
        start_time=resume.clock if resume is not None else 0.0,
    )
    outcome = run_with_recovery(
        dag if dag is not None else diamond(retries),
        env,
        max_rounds=max_rounds,
        bus=bus,
        retry_policy=FixedDelayRetry(retry_delay),
        journal=journal,
        resume=resume,
    )
    if close:
        journal.close()
    else:
        journal._fh.close()  # crash-style: flushed WAL, no compaction
    return outcome, env, journal


def wal_lines(jdir: Path) -> list[str]:
    lines = []
    for seg in sorted(jdir.glob("wal-*.jsonl")):
        lines.extend(seg.read_text().splitlines())
    return lines


# ---------------------------------------------------------------------------
# Record framing
# ---------------------------------------------------------------------------


class TestRecordFraming:
    def test_round_trip(self):
        body = {"event": "job.submit", "job_name": "a", "t": 1.5,
                "attempt": 2}
        line = encode_record(7, body)
        assert line.endswith("\n")
        data = decode_record(line)
        assert data is not None
        assert data["seq"] == 7
        assert data["job_name"] == "a"

    def test_line_is_plain_jsonl_with_crc_first(self):
        line = encode_record(0, {"event": "workflow.start", "t": 0.0})
        parsed = json.loads(line)
        assert list(parsed)[0] == "crc"

    def test_corrupt_payload_rejected(self):
        line = encode_record(3, {"event": "job.submit", "job_name": "a"})
        corrupt = line.replace('"a"', '"b"')
        assert decode_record(corrupt) is None

    def test_corrupt_crc_rejected(self):
        line = encode_record(3, {"event": "job.submit", "job_name": "a"})
        data = json.loads(line)
        data["crc"] = "00000000"
        assert decode_record(json.dumps(data)) is None

    def test_non_object_rejected(self):
        assert decode_record("[1, 2]") is None
        assert decode_record("garbage") is None
        assert decode_record('{"seq": 1}') is None  # no crc


# ---------------------------------------------------------------------------
# Torn-tail truncation
# ---------------------------------------------------------------------------


def _write_attempts(jdir, jobs=("a", "b", "c")):
    """A journal holding one successful attempt per job."""
    journal = Journal(jdir, snapshot_every=10_000)
    t = 0.0
    for name in jobs:
        record = JobAttempt(
            job_name=name, transformation="t", site="s", machine="m",
            attempt=1, submit_time=t, setup_start=t, exec_start=t,
            exec_end=t + 5.0, status=JobStatus.SUCCEEDED,
        )
        for event in attempt_events(record):
            journal(event)
        t += 10.0
    # no close(): simulate a crash, leaving only the flushed WAL
    journal._fh.close()
    return journal


class TestTornTail:
    def test_clean_wal_replays_fully(self, tmp_path):
        _write_attempts(tmp_path)
        rec = recover(tmp_path)
        assert not rec.torn_tail
        assert rec.done == {"a", "b", "c"}

    def test_trailing_garbage_truncated(self, tmp_path):
        _write_attempts(tmp_path)
        seg = next(iter(sorted(tmp_path.glob("wal-*.jsonl"))))
        before = seg.read_text()
        with open(seg, "a") as fh:
            fh.write('{"crc":"bogus","half')
        rec = recover(tmp_path)
        assert rec.torn_tail
        assert rec.done == {"a", "b", "c"}
        assert seg.read_text() == before  # repaired back to last valid

    def test_missing_final_newline_truncates_last_record(self, tmp_path):
        _write_attempts(tmp_path)
        seg = next(iter(sorted(tmp_path.glob("wal-*.jsonl"))))
        raw = seg.read_bytes()
        seg.write_bytes(raw[:-1])  # the classic torn write
        rec = recover(tmp_path)
        assert rec.torn_tail
        # the last record was c's terminal event; c's success is lost
        assert rec.done == {"a", "b"}

    def test_mid_file_corruption_truncates_from_there(self, tmp_path):
        _write_attempts(tmp_path)
        seg = next(iter(sorted(tmp_path.glob("wal-*.jsonl"))))
        lines = seg.read_text().splitlines(keepends=True)
        target = next(
            i for i, line in enumerate(lines)
            if '"job.finish"' in line and '"b"' in line
        )
        lines[target] = lines[target].replace('"m"', '"M"', 1)
        seg.write_text("".join(lines))
        rec = recover(tmp_path)
        assert rec.torn_tail
        assert rec.done == {"a"}
        # repair rewrote the file to end at the last valid record
        survivors = seg.read_text().splitlines()
        assert len(survivors) == target

    def test_seq_gap_truncates(self, tmp_path):
        _write_attempts(tmp_path)
        seg = next(iter(sorted(tmp_path.glob("wal-*.jsonl"))))
        lines = seg.read_text().splitlines(keepends=True)
        target = next(
            i for i, line in enumerate(lines)
            if '"job.finish"' in line and '"b"' in line
        )
        del lines[target]
        seg.write_text("".join(lines))
        rec = recover(tmp_path)
        assert rec.torn_tail
        assert rec.done == {"a"}

    def test_repair_false_leaves_bytes(self, tmp_path):
        _write_attempts(tmp_path)
        seg = next(iter(sorted(tmp_path.glob("wal-*.jsonl"))))
        with open(seg, "a") as fh:
            fh.write("torn")
        before = seg.read_text()
        rec = recover(tmp_path, repair=False)
        assert rec.torn_tail
        assert seg.read_text() == before

    def test_missing_directory_raises(self, tmp_path):
        with pytest.raises(JournalError):
            recover(tmp_path / "nope")

    def test_fresh_journal_refuses_nonempty_dir(self, tmp_path):
        _write_attempts(tmp_path)
        with pytest.raises(JournalError, match="resume"):
            Journal(tmp_path)


# ---------------------------------------------------------------------------
# Snapshot compaction
# ---------------------------------------------------------------------------


class TestSnapshotCompaction:
    def test_compaction_preserves_final_state(self, tmp_path):
        sparse, _, _ = run_journaled(
            {("b", 1)}, tmp_path / "sparse", snapshot_every=10_000
        )
        compacted, _, _ = run_journaled(
            {("b", 1)}, tmp_path / "compact", snapshot_every=5
        )
        assert sparse.success and compacted.success
        rec_sparse = recover(tmp_path / "sparse")
        rec_compact = recover(tmp_path / "compact")
        assert rec_compact.state.records == rec_sparse.state.records
        assert rec_compact.done == rec_sparse.done
        assert (tmp_path / "compact" / "snapshot.json").exists()
        assert not (tmp_path / "compact" / "wal-00000000.jsonl").exists()

    def test_compaction_bounds_replay_after_crash(self, tmp_path):
        # Crash both journals at the same record; the compacted one
        # replays only the WAL suffix past its last snapshot.
        for name, every in (("sparse", 10_000), ("compact", 4)):
            with pytest.raises(CrashInjected):
                run_journaled(
                    {("b", 1)}, tmp_path / name, snapshot_every=every,
                    crash=CrashFault(15, mode="raise"),
                )
        rec_sparse = recover(tmp_path / "sparse")
        rec_compact = recover(tmp_path / "compact")
        # rotation metadata shifts the compacted run's record numbering,
        # so only the replay bound is comparable — but both journals
        # must still resume to the same place.
        assert rec_compact.replayed < rec_sparse.replayed
        done_sparse, _, _ = run_journaled(
            {("b", 1)}, tmp_path / "sparse", resume=rec_sparse,
            snapshot_every=10_000,
        )
        done_compact, _, _ = run_journaled(
            {("b", 1)}, tmp_path / "compact", resume=rec_compact,
            snapshot_every=4,
        )
        assert done_sparse.final.states == done_compact.final.states

    def test_snapshot_emits_event(self, tmp_path):
        bus = EventBus()
        seen = []
        bus.subscribe(
            lambda e: seen.append(e)
            if e.kind is EventKind.JOURNAL_SNAPSHOT else None
        )
        journal = Journal(tmp_path, bus=bus, snapshot_every=10_000)
        journal.snapshot()
        journal.close()
        assert seen and seen[0].detail["segment"] >= 1

    def test_corrupt_snapshot_falls_back_to_wal(self, tmp_path):
        _write_attempts(tmp_path)
        (tmp_path / "snapshot.json").write_text("{not json")
        rec = recover(tmp_path)
        assert rec.done == {"a", "b", "c"}


# ---------------------------------------------------------------------------
# The kill-anywhere property
# ---------------------------------------------------------------------------


def _successes(outcome):
    return sorted(
        (a.job_name, a.attempt)
        for a in outcome.trace
        if a.status is JobStatus.SUCCEEDED
    )


def _sweep_crash_points(failures, tmp_path, *, retries, snapshot_every):
    baseline_dir = tmp_path / "baseline"
    baseline, baseline_env, _ = run_journaled(
        failures, baseline_dir, retries=retries,
        snapshot_every=snapshot_every,
    )
    total_records = recover(baseline_dir).last_seq + 1
    baseline_states = baseline.final.states

    for crash_at in range(1, total_records + 1):
        jdir = tmp_path / f"crash{crash_at}"
        crash = CrashFault(crash_at, mode="raise")
        crashed_env = None
        try:
            _, crashed_env, _ = run_journaled(
                failures, jdir, crash=crash, retries=retries,
                snapshot_every=snapshot_every,
            )
            # crash landed on the final close() path or not at all;
            # either way the workflow already finished — nothing to do
            continue
        except CrashInjected:
            pass
        recovered = recover(jdir)
        if recovered.complete:
            # the workflow's end was journaled before the crash point
            assert recovered.done == {
                n for n, s in baseline_states.items()
                if s is NodeState.DONE
            }
            continue
        resumed, resumed_env, _ = run_journaled(
            failures, jdir, resume=recovered, retries=retries,
            snapshot_every=snapshot_every,
        )

        # 1. Same final states as the uninterrupted run.
        assert resumed.final.states == baseline_states, (
            f"crash at record {crash_at}"
        )
        # 2. Zero re-execution of journaled-complete jobs.
        resumed_jobs = {name for name, _ in resumed_env.submissions}
        assert not (resumed_jobs & recovered.done), (
            f"crash at record {crash_at}: re-executed "
            f"{resumed_jobs & recovered.done}"
        )
        # 3. The executed-attempt set matches the uninterrupted run
        #    (in-flight attempts resume under the SAME attempt number).
        merged = baseline_env.submissions if crashed_env is None else (
            set(crashed_env.submissions) | set(resumed_env.submissions)
        )
        assert set(merged) == set(baseline_env.submissions), (
            f"crash at record {crash_at}"
        )
        # 4. Exactly one journaled success per completed job, across
        #    the merged (journal + resumed) trace.
        success_jobs = [name for name, _ in _successes(resumed)]
        assert len(success_jobs) == len(set(success_jobs)), (
            f"crash at record {crash_at}: duplicate success"
        )
        assert _successes(resumed) == _successes(baseline), (
            f"crash at record {crash_at}"
        )


class TestKillAnywhere:
    def test_exhaustive_sweep_with_retries(self, tmp_path):
        # b fails once then succeeds; c exhausts its single retry and
        # hard-fails in round 1, then succeeds in rescue round 2.
        _sweep_crash_points(
            {("b", 1), ("c", 1), ("c", 2)}, tmp_path,
            retries=1, snapshot_every=10_000,
        )

    def test_exhaustive_sweep_with_compaction(self, tmp_path):
        # snapshot_every=5 exercises snapshot-plus-WAL-suffix recovery
        # at many crash points, including crashes mid-rotation window.
        _sweep_crash_points(
            {("b", 1)}, tmp_path, retries=1, snapshot_every=5,
        )

    @settings(max_examples=10, deadline=None)
    @given(
        failures=st.sets(
            st.tuples(
                st.sampled_from(["a", "b", "c", "d"]),
                st.integers(min_value=1, max_value=2),
            ),
            max_size=4,
        ),
        retries=st.integers(min_value=0, max_value=2),
    )
    def test_property_random_failure_scripts(
        self, failures, retries, tmp_path_factory
    ):
        tmp_path = tmp_path_factory.mktemp("kill-anywhere")
        _sweep_crash_points(
            failures, tmp_path, retries=retries, snapshot_every=7,
        )


# ---------------------------------------------------------------------------
# The undecided-decision window (FINISH journaled, RETRY lost)
# ---------------------------------------------------------------------------


class TestUndecidedDecision:
    def test_retry_charge_lands_exactly_once(self, tmp_path):
        failures = {("b", 1)}
        baseline_dir = tmp_path / "baseline"
        baseline, baseline_env, _ = run_journaled(
            failures, baseline_dir, retries=2
        )
        # Find the crash point where b's failed FINISH is journaled but
        # the scheduler's RETRY decision is not: the undecided window.
        recovered = None
        for crash_at in range(1, 30):
            jdir = tmp_path / f"probe{crash_at}"
            try:
                run_journaled(
                    failures, jdir, retries=2,
                    crash=CrashFault(crash_at, mode="raise"),
                )
            except CrashInjected:
                candidate = recover(jdir)
                if "b" in candidate.state.undecided:
                    recovered = candidate
                    break
        assert recovered is not None, "no crash point left b undecided"
        jdir = recovered.path
        resumed, resumed_env, _ = run_journaled(
            failures, jdir, resume=recovered, retries=2
        )
        assert resumed.success
        assert set(resumed_env.submissions) == {("b", 2), ("c", 1), ("d", 1)}
        assert set(baseline_env.submissions) == {
            ("a", 1), ("b", 1), ("b", 2), ("c", 1), ("d", 1)
        }
        assert resumed.final.states == baseline.final.states


# ---------------------------------------------------------------------------
# Blacklist state across a manager restart (regression)
# ---------------------------------------------------------------------------


class TestBlacklistAcrossRestart:
    def _trip(self, bus):
        blacklist = Blacklist(
            BlacklistPolicy(threshold=2, site_threshold=3), bus=bus
        )
        for _ in range(2):
            blacklist.record_start_failure("bad-node", "osg", now=10.0)
        assert blacklist.is_blocked("bad-node", "osg", now=20.0)
        return blacklist

    def test_snapshot_restores_blocks_and_streaks(self, tmp_path):
        bus = EventBus()
        journal = Journal(tmp_path, bus=bus)
        blacklist = self._trip(bus)
        blacklist.record_start_failure("other", "osg", now=11.0)  # streak 1
        journal.attach_blacklist(blacklist)
        journal.snapshot()
        journal._fh.close()  # crash: no close()

        # "new process": nothing shared but the journal directory
        recovered = recover(tmp_path)
        restored = recovered.restore_blacklist()
        assert restored is not None
        assert restored.is_blocked("bad-node", "osg", now=20.0)
        assert restored._machine_streak["other"] == 1
        assert restored.trips == blacklist.trips
        assert restored.policy.threshold == 2

    def test_wal_only_blocks_survive_without_snapshot(self, tmp_path):
        # Crash before any snapshot carried the blacklist: the
        # journaled blacklist.add records alone must restore the block.
        bus = EventBus()
        journal = Journal(tmp_path, bus=bus)
        self._trip(bus)
        journal._fh.close()  # crash before snapshot()

        recovered = recover(tmp_path)
        assert recovered.blacklist is None
        assert recovered.state.blacklist_blocks
        restored = recovered.restore_blacklist(
            policy=BlacklistPolicy(threshold=2)
        )
        assert restored is not None
        assert restored.is_blocked("bad-node", "osg", now=20.0)

    def test_no_blacklist_recorded_restores_none(self, tmp_path):
        journal = Journal(tmp_path)
        journal.close()
        assert recover(tmp_path).restore_blacklist() is None


# ---------------------------------------------------------------------------
# Durable directory creation + fsync policy
# ---------------------------------------------------------------------------


class TestDurability:
    def test_ensure_dir_fsyncs_each_created_parent(
        self, tmp_path, monkeypatch
    ):
        synced = []
        real_fsync = os.fsync

        def spy(fd):
            synced.append(fd)
            return real_fsync(fd)

        monkeypatch.setattr(iolib.os, "fsync", spy)
        target = ensure_dir(tmp_path / "a" / "b" / "c")
        assert target.is_dir()
        # three directories created -> three parent fsyncs
        assert len(synced) == 3

    def test_ensure_dir_tolerates_fsync_failure(
        self, tmp_path, monkeypatch
    ):
        def boom(fd):
            raise OSError("no dir fsync on this fs")

        monkeypatch.setattr(iolib.os, "fsync", boom)
        target = ensure_dir(tmp_path / "x" / "y")
        assert target.is_dir()  # creation survives; durability degrades

    def test_ensure_dir_existing_dir_no_fsync(self, tmp_path, monkeypatch):
        synced = []
        monkeypatch.setattr(iolib.os, "fsync", lambda fd: synced.append(fd))
        ensure_dir(tmp_path)
        assert synced == []

    def test_wal_fsync_failure_propagates(self, tmp_path, monkeypatch):
        # Unlike directory fsync (best-effort), a failing WAL fsync is
        # a broken durability promise: it must surface, not vanish.
        journal = Journal(tmp_path, fsync="always")

        import repro.resilience.journal as journal_mod

        def boom(fd):
            raise OSError(5, "I/O error")

        monkeypatch.setattr(journal_mod.os, "fsync", boom)
        event = RunEvent(
            EventKind.SUBMIT, 1.0, job_name="a", transformation="t",
            attempt=1,
        )
        with pytest.raises(OSError):
            journal(event)

    def test_fsync_modes_validated(self, tmp_path):
        with pytest.raises(ValueError):
            Journal(tmp_path, fsync="sometimes")


# ---------------------------------------------------------------------------
# Crash fault + local reconcile
# ---------------------------------------------------------------------------


class TestCrashFault:
    def test_validation(self):
        with pytest.raises(ValueError):
            CrashFault(0)
        with pytest.raises(ValueError):
            CrashFault(1, mode="explode")
        with pytest.raises(ValueError):
            CrashFault(1, torn_fraction=1.0)

    def test_fires_at_nth_record(self, tmp_path):
        journal = Journal(tmp_path, crash=CrashFault(3, mode="raise"))
        event = RunEvent(
            EventKind.SUBMIT, 1.0, job_name="a", transformation="t",
            attempt=1,
        )
        journal(event)  # record 2 (record 1 is the segment header)
        with pytest.raises(CrashInjected):
            journal(event)
        assert journal.closed
        # the torn prefix is on disk but unparseable as a record
        rec = recover(tmp_path)
        assert rec.torn_tail
        assert rec.state.in_flight == {"a": 1}

    def test_torn_fraction_zero_still_writes_a_byte(self, tmp_path):
        journal = Journal(
            tmp_path, crash=CrashFault(2, mode="raise", torn_fraction=0.0)
        )
        event = RunEvent(
            EventKind.SUBMIT, 1.0, job_name="a", transformation="t",
            attempt=1,
        )
        with pytest.raises(CrashInjected):
            journal(event)
        assert recover(tmp_path).torn_tail


class TestReconcileLocal:
    def _recovered(self, tmp_path, *, manager, workers, in_flight):
        state = JournalState()
        state.manager_pid = manager
        state.worker_pids = list(workers)
        state.in_flight = dict(in_flight)
        from repro.resilience.journal import RecoveredState

        return RecoveredState(
            path=tmp_path, state=state, blacklist=None, last_seq=0,
            last_segment=0, torn_tail=False, replayed=1,
        )

    def test_dead_manager_reaps_live_workers(self, tmp_path):
        recovered = self._recovered(
            tmp_path, manager=99991, workers=[99992, 99993],
            in_flight={"b": 2},
        )
        alive = {99992}
        killed = []
        report = reconcile_local(
            recovered,
            alive=lambda pid: pid in alive,
            kill=lambda pid, sig: killed.append((pid, sig)),
        )
        assert not report.manager_alive
        assert report.reaped == [99992]
        assert [pid for pid, _ in killed] == [99992]
        assert report.requeued == ["b"]

    def test_live_manager_refuses_resume(self, tmp_path):
        recovered = self._recovered(
            tmp_path, manager=99991, workers=[], in_flight={}
        )
        with pytest.raises(JournalError, match="live manager"):
            reconcile_local(recovered, alive=lambda pid: True)

    def test_own_pid_is_not_a_foreign_manager(self, tmp_path):
        # Resuming in the same process (raise-mode crash tests) must
        # not see itself as a conflicting live manager.
        recovered = self._recovered(
            tmp_path, manager=os.getpid(), workers=[], in_flight={}
        )
        report = reconcile_local(recovered, alive=lambda pid: True)
        assert not report.manager_alive

    def test_journal_records_manager_and_workers(self, tmp_path):
        journal = Journal(tmp_path)
        journal.record_workers([111, 42])
        journal._fh.close()
        state = recover(tmp_path).state
        assert state.manager_pid == os.getpid()
        assert state.worker_pids == [42, 111]


# ---------------------------------------------------------------------------
# Resume ergonomics
# ---------------------------------------------------------------------------


class TestResumeSurface:
    def test_resume_of_complete_run_raises(self, tmp_path):
        run_journaled(set(), tmp_path)
        recovered = recover(tmp_path)
        assert recovered.complete
        with pytest.raises(ValueError, match="nothing to resume"):
            run_journaled(set(), tmp_path, resume=recovered)

    def test_clock_continues_across_resume(self, tmp_path):
        with pytest.raises(CrashInjected):
            run_journaled(
                {("b", 1)}, tmp_path, crash=CrashFault(9, mode="raise")
            )
        recovered = recover(tmp_path)
        assert recovered.clock > 0.0
        resumed, _, _ = run_journaled(
            {("b", 1)}, tmp_path, resume=recovered
        )
        resumed_times = [
            a.exec_end for a in resumed.trace
            if a.exec_end > recovered.clock
        ]
        assert resumed_times  # post-crash attempts continue the clock

    def test_rescue_dag_interop(self, tmp_path):
        with pytest.raises(CrashInjected):
            run_journaled(set(), tmp_path, crash=CrashFault(12, mode="raise"))
        recovered = recover(tmp_path)
        out = recovered.write_rescue(diamond(), tmp_path / "resume.dag")
        text = out.read_text()
        for name in sorted(recovered.done):
            assert f"DONE {name}" in text or f"{name} DONE" in text

    def test_journal_context_manager(self, tmp_path):
        with Journal(tmp_path) as journal:
            journal.record_workers([1])
        assert journal.closed
        assert (tmp_path / "snapshot.json").exists()
