"""Autofix (``repro-lint --fix``) and the emit-site selfcheck."""

from __future__ import annotations

import pytest

from repro.lint import lint
from repro.lint.cli import main as lint_main
from repro.lint.fix import apply_fixes, fixable_rules
from repro.lint.selfcheck import check_paths, check_source
from repro.lint.selfcheck import main as selfcheck_main
from repro.wms.dax import ADag, AbstractJob, File


def _job(jid, inputs=(), outputs=()):
    j = AbstractJob(id=jid, transformation="t")
    for name, size in inputs:
        j.add_input(File(name, size=size))
    for name, size in outputs:
        j.add_output(File(name, size=size))
    return j


class TestAutofix:
    def test_fixable_rules_registered(self):
        assert fixable_rules() == ["DAX005", "DAX007"]

    def test_redundant_edge_dropped(self):
        adag = ADag(name="w")
        adag.add_job(_job("a", outputs=[("x.dat", 10)]))
        adag.add_job(_job("b", inputs=[("x.dat", 10)],
                          outputs=[("y.dat", 5)]))
        adag.add_dependency("a", "b")
        assert lint(adag).by_rule("DAX007")
        repaired = apply_fixes(adag)
        assert [f.rule for f in repaired] == ["DAX007"]
        assert ("a", "b") not in adag._explicit_edges
        assert not lint(adag).by_rule("DAX007")

    def test_size_disagreement_unified_to_largest(self):
        adag = ADag(name="w")
        adag.add_job(_job("a", outputs=[("x.dat", 100)]))
        adag.add_job(_job("b", inputs=[("x.dat", 999)],
                          outputs=[("y.dat", 5)]))
        assert lint(adag).by_rule("DAX005")
        repaired = apply_fixes(adag)
        assert [f.rule for f in repaired] == ["DAX005"]
        sizes = {
            f.size
            for job in adag.jobs.values()
            for f, _ in job.uses
            if f.name == "x.dat"
        }
        assert sizes == {999}
        assert not lint(adag).by_rule("DAX005")

    def test_unfixable_findings_left_alone(self):
        adag = ADag(name="w")
        adag.add_job(_job("a", outputs=[("x.dat", 1)]))
        adag.add_job(_job("b", outputs=[("x.dat", 1)]))  # DAX003
        assert apply_fixes(adag) == []
        assert lint(adag).by_rule("DAX003")

    def test_fix_terminates_on_pathological_relint(self):
        from repro.lint.findings import Finding, Severity

        adag = ADag(name="w")
        adag.add_job(_job("a", outputs=[("x.dat", 10)]))
        adag.add_job(_job("b", inputs=[("x.dat", 10)],
                          outputs=[("y.dat", 5)]))
        adag.add_dependency("a", "b")
        eternal = Finding(
            rule="DAX007", severity=Severity.INFO,
            location="edge:a->b", message="m",
        )
        calls = []

        def relint(_a):
            calls.append(1)
            return [eternal]

        apply_fixes(adag, relint=relint)
        assert len(calls) <= 6  # MAX_ROUNDS + the final no-progress pass

    def test_cli_fix_rewrites_the_file(self, tmp_path, capsys):
        dax = tmp_path / "w.dax"
        adag = ADag(name="w")
        # a transformation the default catalogs know, so the post-fix
        # re-lint comes back clean and the CLI exits 0
        a = AbstractJob(id="a", transformation="run_cap3")
        a.add_output(File("x.dat", size=10))
        b = AbstractJob(id="b", transformation="run_cap3")
        b.add_input(File("x.dat", size=10))
        b.add_output(File("y.dat", size=5))
        adag.add_job(a)
        adag.add_job(b)
        adag.add_dependency("a", "b")
        adag.write(dax)
        rc = lint_main(["--dax", str(dax), "--fix"])
        captured = capsys.readouterr()
        assert rc == 0
        assert "DAX007" in captured.err
        assert (tmp_path / "w.dax.orig").exists()
        fixed = ADag.read(dax)
        assert not lint(fixed).by_rule("DAX007")

    def test_cli_fix_requires_dax(self, capsys):
        with pytest.raises(SystemExit):
            lint_main(["-n", "5", "--fix"])


GOOD_SOURCE = '''
from repro.observe.events import EventKind, RunEvent

def go(bus, record, ok):
    bus.emit(RunEvent(kind=EventKind.SUBMIT, time=0.0, job_name="a"))
    terminal = EventKind.FINISH if ok else EventKind.EVICT
    bus.emit(RunEvent(kind=terminal, time=1.0, job_name="a",
                      record=record))
    self._emit(EventKind.MATCH, job)
'''

BAD_KIND = '''
from repro.observe.events import EventKind, RunEvent

def go(bus):
    bus.emit(RunEvent(kind=EventKind.SUBMITTED, time=0.0))
'''

BAD_STRING = '''
def go(self, job):
    self._emit("job.submit", job)
'''

BAD_ASSIGNED = '''
from repro.observe.events import EventKind, RunEvent

def go(bus, ok):
    kind = EventKind.FINISH if ok else EventKind.EVICTED
    bus.emit(RunEvent(kind=kind, time=0.0))
'''


class TestSelfcheck:
    def test_good_source_passes(self):
        assert check_source(GOOD_SOURCE) == []

    def test_misspelled_member_flagged(self):
        problems = check_source(BAD_KIND, "x.py")
        assert len(problems) == 1
        assert "SUBMITTED" in problems[0]
        assert problems[0].startswith("x.py:")

    def test_string_literal_kind_flagged(self):
        problems = check_source(BAD_STRING)
        assert len(problems) == 1
        assert "job.submit" in problems[0]

    def test_assigned_name_resolved(self):
        problems = check_source(BAD_ASSIGNED)
        assert len(problems) == 1
        assert "EVICTED" in problems[0]

    def test_dynamic_kinds_pass(self):
        source = (
            "def go(self, kind, job):\n"
            "    self._emit(kind, job)\n"
        )
        assert check_source(source) == []

    def test_syntax_error_reported_not_raised(self):
        problems = check_source("def broken(:", "b.py")
        assert problems and "cannot parse" in problems[0]

    def test_whole_tree_is_clean(self):
        # the real codebase must satisfy its own taxonomy check
        assert check_paths(["src/repro"]) == []

    def test_main_exit_codes(self, tmp_path, capsys):
        assert selfcheck_main([]) == 2
        good = tmp_path / "good.py"
        good.write_text(GOOD_SOURCE)
        assert selfcheck_main([str(good)]) == 0
        bad = tmp_path / "bad.py"
        bad.write_text(BAD_KIND)
        assert selfcheck_main([str(bad)]) == 1
        assert "SUBMITTED" in capsys.readouterr().err


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(pytest.main([__file__, "-q"]))
