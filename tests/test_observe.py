"""Tests for the live observability layer (repro.observe).

Covers the event bus and taxonomy, the metrics registry, the
utilization sampler, the three exporters (JSONL log, Chrome trace,
status view), and the cross-backend invariant: the same DAG run on the
local backend and on a simulated platform emits the same event
sequence modulo timestamps.
"""

import json

import pytest

from repro.dagman.dag import Dag, DagJob
from repro.dagman.events import JobAttempt, JobStatus, WorkflowTrace
from repro.dagman.scheduler import DagmanScheduler
from repro.execution.local import LocalEnvironment
from repro.observe import (
    EventBus,
    EventKind,
    EventLogWriter,
    EventRecorder,
    MetricsRegistry,
    RunEvent,
    StatusView,
    TraceCollector,
    UtilizationSample,
    UtilizationSampler,
    attempt_events,
    chrome_trace,
    events_to_trace,
    instrument,
    read_events,
    render_status,
    write_chrome_trace,
    write_events,
)
from repro.observe.log import event_from_json, event_to_json
from repro.sim.cluster import CampusCluster, CampusClusterConfig
from repro.sim.engine import Simulator
from repro.sim.rng import RngStreams
from repro.wms.monitor import read_trace, write_trace
from repro.wms.statistics import summarize, summarize_events


def make_attempt(
    name="j1",
    *,
    attempt=1,
    status=JobStatus.SUCCEEDED,
    submit=0.0,
    setup=10.0,
    execs=20.0,
    end=30.0,
    error=None,
) -> JobAttempt:
    return JobAttempt(
        job_name=name,
        transformation="run_cap3",
        site="osg",
        machine="node-1",
        attempt=attempt,
        submit_time=submit,
        setup_start=setup,
        exec_start=execs,
        exec_end=end,
        status=status,
        error=error,
    )


def chain_dag() -> Dag:
    """a -> b -> c, runnable both locally and on the simulators."""
    dag = Dag(name="chain")
    for name in ("a", "b", "c"):
        dag.add_job(
            DagJob(
                name=name,
                transformation=f"t_{name}",
                runtime=10.0,
                payload=lambda: None,
            )
        )
    dag.add_edge("a", "b")
    dag.add_edge("b", "c")
    return dag


class TestEventBus:
    def test_delivery_in_subscription_order(self):
        bus = EventBus()
        order = []
        bus.subscribe(lambda e: order.append("first"))
        bus.subscribe(lambda e: order.append("second"))
        bus.emit(RunEvent(EventKind.SUBMIT, 0.0, job_name="j"))
        assert order == ["first", "second"]

    def test_kind_filtering(self):
        bus = EventBus()
        seen = []
        bus.subscribe(seen.append, kinds=(EventKind.RETRY,))
        bus.emit(RunEvent(EventKind.SUBMIT, 0.0, job_name="j"))
        bus.emit(RunEvent(EventKind.RETRY, 1.0, job_name="j"))
        assert [e.kind for e in seen] == [EventKind.RETRY]

    def test_unsubscribe(self):
        bus = EventBus()
        seen = []
        unsubscribe = bus.subscribe(seen.append)
        bus.emit(RunEvent(EventKind.SUBMIT, 0.0))
        unsubscribe()
        unsubscribe()  # idempotent
        bus.emit(RunEvent(EventKind.SUBMIT, 1.0))
        assert len(seen) == 1

    def test_emitted_counter_counts_all(self):
        bus = EventBus()  # no subscribers at all
        bus.emit(RunEvent(EventKind.SUBMIT, 0.0))
        bus.emit(RunEvent(EventKind.RETRY, 1.0))
        assert bus.emitted == 2

    def test_terminal_event_requires_record(self):
        with pytest.raises(ValueError, match="must carry a record"):
            RunEvent(EventKind.FINISH, 1.0, job_name="j")

    def test_trace_collector_folds_terminals(self):
        bus = EventBus()
        collector = TraceCollector(bus)
        record = make_attempt()
        bus.emit(RunEvent(EventKind.SUBMIT, 0.0, job_name="j1"))
        bus.emit(
            RunEvent(EventKind.FINISH, 30.0, job_name="j1", record=record)
        )
        assert list(collector.trace) == [record]

    def test_recorder_sequence_strips_timestamps(self):
        bus = EventBus()
        recorder = EventRecorder(bus)
        bus.emit(RunEvent(EventKind.SUBMIT, 12.5, job_name="a"))
        bus.emit(RunEvent(EventKind.RETRY, 99.0, job_name="a"))
        assert recorder.sequence() == [
            ("job.submit", "a"), ("job.retry", "a"),
        ]
        assert recorder.sequence(kinds=(EventKind.RETRY,)) == [
            ("job.retry", "a")
        ]


class TestAttemptEvents:
    def test_with_setup_phase(self):
        events = attempt_events(make_attempt())
        assert [e.kind for e in events] == [
            EventKind.SETUP_START, EventKind.EXEC_START, EventKind.FINISH,
        ]
        assert [e.time for e in events] == [10.0, 20.0, 30.0]
        assert events[-1].record is not None

    def test_no_setup_phase_when_coincident(self):
        record = make_attempt(setup=20.0)  # setup_start == exec_start
        kinds = [e.kind for e in attempt_events(record)]
        assert EventKind.SETUP_START not in kinds

    def test_evicted_attempt_ends_in_evict(self):
        record = make_attempt(status=JobStatus.EVICTED, error="preempted")
        assert attempt_events(record)[-1].kind is EventKind.EVICT


class TestMetrics:
    def test_counter_rejects_negative(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.counter("c").inc(-1)

    def test_histogram_percentiles(self):
        reg = MetricsRegistry()
        h = reg.histogram("h")
        for v in (5.0, 1.0, 3.0, 2.0, 4.0):
            h.observe(v)
        assert h.count == 5
        assert h.mean == 3.0
        assert h.percentile(0) == 1.0
        assert h.percentile(50) == 3.0
        assert h.percentile(100) == 5.0

    def test_snapshot_renders_labels(self):
        reg = MetricsRegistry()
        reg.counter("events_total", {"kind": "job.finish"}).inc(3)
        snap = reg.snapshot()
        assert snap["counters"]["events_total{kind=job.finish}"] == 3.0

    def test_instrument_standard_metrics(self):
        bus = EventBus()
        reg = instrument(bus)
        ok = make_attempt("a")
        for event in (
            RunEvent(EventKind.SUBMIT, 0.0, job_name="a"),
            RunEvent(EventKind.SUBMIT, 0.0, job_name="b"),
            *attempt_events(ok),
            RunEvent(EventKind.RETRY, 31.0, job_name="b"),
        ):
            bus.emit(event)
        snap = reg.snapshot()
        assert snap["counters"]["events_total{kind=job.submit}"] == 2.0
        assert snap["counters"]["retries_total"] == 1.0
        # two submits, one terminal -> one still in flight
        assert snap["gauges"]["jobs_in_flight"] == 1.0
        hist = snap["histograms"]["kickstart_s{transformation=run_cap3}"]
        assert hist["count"] == 1
        assert hist["mean"] == pytest.approx(10.0)

    def test_instrument_counts_failures_and_evictions(self):
        bus = EventBus()
        reg = instrument(bus)
        evicted = make_attempt(status=JobStatus.EVICTED, error="preempted")
        for event in attempt_events(evicted):
            bus.emit(event)
        snap = reg.snapshot()
        assert snap["counters"]["evictions_total"] == 1.0
        assert snap["counters"]["failures_total"] == 1.0


class TestUtilizationSampler:
    class FakePlatform:
        def __init__(self):
            self.status = {"idle": 2, "running": 3}

        def queue_status(self):
            return dict(self.status)

    def test_samples_on_the_virtual_clock(self):
        sim = Simulator()
        sim.schedule(25.0, lambda: None)  # the workload
        sampler = UtilizationSampler(
            sim, self.FakePlatform(), interval_s=10.0
        ).start()
        sim.run()
        assert [(s.time, s.busy, s.idle) for s in sampler.samples] == [
            (0.0, 3, 2), (10.0, 3, 2), (20.0, 3, 2), (30.0, 3, 2),
        ]

    def test_does_not_keep_simulation_alive(self):
        sim = Simulator()
        UtilizationSampler(sim, self.FakePlatform(), interval_s=5.0).start()
        # No other work pending: the first tick must not reschedule.
        sim.run(max_events=10)
        assert sim.pending == 0

    def test_stop_halts_sampling(self):
        sim = Simulator()
        sim.schedule(100.0, lambda: None)  # the workload
        sampler = UtilizationSampler(
            sim, self.FakePlatform(), interval_s=10.0
        ).start()
        sim.schedule(15.0, sampler.stop)
        sim.run()
        assert [s.time for s in sampler.samples] == [0.0, 10.0]

    def test_emits_sample_events(self):
        sim = Simulator()
        bus = EventBus()
        recorder = EventRecorder(bus)
        UtilizationSampler(
            sim, self.FakePlatform(), interval_s=10.0, bus=bus, site="osg"
        ).start()
        sim.run()
        [event] = recorder.events
        assert event.kind is EventKind.SAMPLE
        assert event.site == "osg"
        assert event.detail == {"busy": 3, "idle": 2}

    def test_rejects_bad_interval(self):
        with pytest.raises(ValueError):
            UtilizationSampler(Simulator(), self.FakePlatform(), interval_s=0)


class TestEventLog:
    def events(self):
        ok = make_attempt("a")
        evicted = make_attempt(
            "b", status=JobStatus.EVICTED, error="preempted", end=40.0
        )
        return [
            RunEvent(EventKind.WORKFLOW_START, 0.0, detail={"jobs": 2}),
            RunEvent(EventKind.SUBMIT, 0.0, job_name="a", attempt=1),
            *attempt_events(ok),
            *attempt_events(evicted),
            RunEvent(
                EventKind.WORKFLOW_END, 40.0, detail={"success": False}
            ),
        ]

    def test_round_trip(self, tmp_path):
        path = tmp_path / "events.jsonl"
        events = self.events()
        assert write_events(path, events) == len(events)
        loaded = read_events(path)
        assert [e.kind for e in loaded] == [e.kind for e in events]
        assert [e.time for e in loaded] == [e.time for e in events]
        assert events_to_trace(loaded) == events_to_trace(events)
        # detail survives (workflow.end success flag, terminal status)
        assert loaded[-1].detail["success"] is False

    def test_classic_reader_recovers_attempts_from_event_log(self, tmp_path):
        """read_trace over an event log == the attempts (superset schema)."""
        path = tmp_path / "events.jsonl"
        events = self.events()
        write_events(path, events)
        assert sorted(
            read_trace(path), key=lambda a: a.job_name
        ) == sorted(events_to_trace(events), key=lambda a: a.job_name)

    def test_event_reader_accepts_legacy_attempt_logs(self, tmp_path):
        """read_events over a monitor.write_trace log synthesises the
        terminal events, so pre-existing logs keep working."""
        path = tmp_path / "trace.jsonl"
        trace = WorkflowTrace()
        trace.add(make_attempt("a"))
        trace.add(make_attempt("b", status=JobStatus.EVICTED,
                               error="preempted"))
        write_trace(path, trace)
        events = read_events(path)
        assert [e.kind for e in events] == [EventKind.FINISH, EventKind.EVICT]
        assert events_to_trace(events) == trace

    def test_writer_streams_and_closes(self, tmp_path):
        path = tmp_path / "events.jsonl"
        bus = EventBus()
        with EventLogWriter(path, bus):
            bus.emit(RunEvent(EventKind.SUBMIT, 0.0, job_name="a"))
            # flushed per event: visible before close
            assert len(path.read_text().splitlines()) == 1
            bus.emit(RunEvent(EventKind.RETRY, 1.0, job_name="a"))
        # closed: no longer subscribed, writing raises
        bus.emit(RunEvent(EventKind.SUBMIT, 2.0, job_name="b"))
        assert len(path.read_text().splitlines()) == 2

    def test_non_terminal_json_has_no_attempt_fields(self):
        line = event_to_json(RunEvent(EventKind.SUBMIT, 1.0, job_name="a"))
        assert line == {"event": "job.submit", "t": 1.0, "job_name": "a"}
        back = event_from_json(line)
        assert back.kind is EventKind.SUBMIT and back.record is None

    def test_summarize_events_matches_summarize(self):
        events = self.events()
        trace = events_to_trace(events)
        assert summarize_events(events) == summarize(trace)


class TestChromeTrace:
    def trace(self):
        trace = WorkflowTrace()
        trace.add(make_attempt("a"))
        trace.add(make_attempt("b", submit=5.0, setup=5.0, execs=5.0,
                               end=35.0))
        trace.add(make_attempt("c", status=JobStatus.EVICTED,
                               error="preempted"))
        return trace

    def test_structure(self):
        doc = chrome_trace(self.trace(), workflow="wf")
        assert set(doc) >= {"traceEvents", "displayTimeUnit"}
        phases = {e["ph"] for e in doc["traceEvents"]}
        assert phases == {"M", "X"}

    def test_exec_slice_per_attempt_in_microseconds(self):
        doc = chrome_trace(self.trace())
        execs = [
            e for e in doc["traceEvents"]
            if e["ph"] == "X" and e["cat"] == "exec"
        ]
        assert len(execs) == 3
        a = next(e for e in execs if e["args"]["job"] == "a")
        assert a["ts"] == pytest.approx(20.0 * 1e6)
        assert a["dur"] == pytest.approx(10.0 * 1e6)

    def test_zero_duration_phases_skipped_but_exec_kept(self):
        doc = chrome_trace(self.trace())
        b_slices = [
            e for e in doc["traceEvents"]
            if e["ph"] == "X" and e["args"].get("job") == "b"
        ]
        assert [e["cat"] for e in b_slices] == ["exec"]

    def test_error_recorded_in_args(self):
        doc = chrome_trace(self.trace())
        c = next(
            e for e in doc["traceEvents"]
            if e["ph"] == "X" and e["args"].get("job") == "c"
        )
        assert c["args"]["status"] == "evicted"
        assert c["args"]["error"] == "preempted"

    def test_samples_become_counter_track(self):
        samples = [
            UtilizationSample(0.0, 1, 9), UtilizationSample(60.0, 5, 5),
        ]
        doc = chrome_trace(self.trace(), samples=samples)
        counters = [e for e in doc["traceEvents"] if e["ph"] == "C"]
        assert [c["args"]["busy"] for c in counters] == [1, 5]

    def test_write_is_valid_json(self, tmp_path):
        path = tmp_path / "trace.chrome.json"
        write_chrome_trace(path, self.trace(), samples=None, workflow="wf")
        loaded = json.loads(path.read_text())
        assert loaded["traceEvents"]


class TestStatusView:
    def test_tracks_phases_and_progress(self):
        view = StatusView(total_jobs=2)
        view.update(RunEvent(EventKind.SUBMIT, 0.0, job_name="a", attempt=1))
        assert view.in_flight["a"][2] == "queued"
        view.update(RunEvent(EventKind.MATCH, 1.0, job_name="a"))
        assert view.in_flight["a"][2] == "matched"
        view.update(RunEvent(EventKind.EXEC_START, 2.0, job_name="a"))
        assert view.in_flight["a"][2] == "running"
        view.update(
            RunEvent(EventKind.FINISH, 30.0, job_name="a",
                     record=make_attempt("a"))
        )
        assert "a" not in view.in_flight
        assert view.done == {"a"}
        assert "1/2 jobs done (50.0%)" in view.render()
        assert "[RUNNING]" in view.render()

    def test_workflow_end_sets_headline(self):
        view = StatusView()
        view.update(
            RunEvent(EventKind.WORKFLOW_END, 5.0, detail={"success": True})
        )
        assert "[SUCCEEDED]" in view.render()

    def test_failed_attempt_counts(self):
        view = StatusView(total_jobs=1)
        evicted = make_attempt("a", status=JobStatus.EVICTED, error="x")
        view.update(RunEvent(EventKind.SUBMIT, 0.0, job_name="a"))
        view.update(
            RunEvent(EventKind.EVICT, 1.0, job_name="a", record=evicted)
        )
        view.update(RunEvent(EventKind.RETRY, 1.0, job_name="a"))
        assert view.failures == 1
        assert view.evictions == 1
        assert view.retries == 1

    def test_render_status_one_shot(self):
        text = render_status(
            [RunEvent(EventKind.SUBMIT, 0.0, job_name="a")], total_jobs=4
        )
        assert "0/4 jobs done" in text
        assert "in flight (1):" in text


class TestCrossBackend:
    """The same DAG emits the same event sequence on every backend."""

    #: Kinds every backend emits (MATCH/SETUP_START are platform-only).
    CORE = (
        EventKind.WORKFLOW_START,
        EventKind.SUBMIT,
        EventKind.EXEC_START,
        EventKind.FINISH,
        EventKind.EVICT,
        EventKind.RETRY,
        EventKind.STATE_CHANGE,
        EventKind.WORKFLOW_END,
    )

    def simulated_sequence(self):
        bus = EventBus()
        recorder = EventRecorder(bus)
        simulator = Simulator()
        env = CampusCluster(
            simulator, CampusClusterConfig(group_slots=4),
            streams=RngStreams(seed=7), bus=bus,
        )
        result = DagmanScheduler(chain_dag(), env, bus=bus).run()
        assert result.success
        return recorder

    def local_sequence(self):
        bus = EventBus()
        recorder = EventRecorder(bus)
        with LocalEnvironment(max_workers=2, executor="thread",
                              bus=bus) as env:
            result = DagmanScheduler(chain_dag(), env, bus=bus).run()
        assert result.success
        return recorder

    def test_identical_sequences_modulo_timestamps(self):
        sim = self.simulated_sequence().sequence(kinds=self.CORE)
        local = self.local_sequence().sequence(kinds=self.CORE)
        assert sim == local

    def test_simulated_full_sequence_shape(self):
        recorder = self.simulated_sequence()
        kinds = [e.kind for e in recorder.events]
        assert kinds[0] is EventKind.WORKFLOW_START
        assert kinds[-1] is EventKind.WORKFLOW_END
        # every job: submit, match, exec_start, finish — exactly once
        for kind in (EventKind.SUBMIT, EventKind.MATCH,
                     EventKind.EXEC_START, EventKind.FINISH):
            assert sorted(
                e.job_name for e in recorder.of_kind(kind)
            ) == ["a", "b", "c"]
        # event times never regress (virtual-time causality)
        times = [e.time for e in recorder.events]
        assert times == sorted(times)

    def test_bus_trace_equals_scheduler_trace(self):
        bus = EventBus()
        collector = TraceCollector(bus)
        simulator = Simulator()
        env = CampusCluster(simulator, streams=RngStreams(seed=1), bus=bus)
        result = DagmanScheduler(chain_dag(), env, bus=bus).run()
        assert collector.trace == result.trace

    def test_event_log_round_trip_of_simulated_run(self, tmp_path):
        bus = EventBus()
        recorder = EventRecorder(bus)
        path = tmp_path / "events.jsonl"
        with EventLogWriter(path, bus):
            simulator = Simulator()
            env = CampusCluster(
                simulator, streams=RngStreams(seed=2), bus=bus
            )
            result = DagmanScheduler(chain_dag(), env, bus=bus).run()
        loaded = read_events(path)
        assert [(e.kind, e.job_name) for e in loaded] == [
            (e.kind, e.job_name) for e in recorder.events
        ]
        assert events_to_trace(loaded) == result.trace
