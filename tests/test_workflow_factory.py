"""Tests for the blast2cap3 workflow factory: DAG structure (Figs. 2-3),
real local execution parity, and simulated paper-scale runs."""

import pytest

from repro.bio.fasta import read_fasta, write_fasta
from repro.blast.tabular import write_tabular
from repro.core.blast2cap3 import blast2cap3_serial
from repro.core.workflow_factory import (
    build_blast2cap3_adag,
    default_catalogs,
    run_local,
    simulate_paper_run,
    workflow_figure,
)
from repro.datagen.transcripts import TranscriptomeSpec
from repro.datagen.workload import generate_blast2cap3_workload
from repro.perfmodel.task_models import PaperTaskModel
from repro.wms.planner import PlannerOptions, plan


class TestAdagStructure:
    def test_job_inventory_matches_fig2(self):
        adag = build_blast2cap3_adag(5)
        names = set(adag.jobs)
        assert {"create_transcript_list", "create_alignment_list", "split",
                "merge_joined", "merge_unjoined", "concat_final"} <= names
        assert {f"run_cap3_{i}" for i in range(1, 6)} <= names
        assert len(adag) == 6 + 5

    def test_dependency_structure(self):
        adag = build_blast2cap3_adag(3)
        edges = adag.edges()
        assert ("split", "run_cap3_1") in edges
        assert ("create_transcript_list", "run_cap3_1") in edges
        assert ("run_cap3_2", "merge_joined") in edges
        assert ("run_cap3_2", "merge_unjoined") in edges
        assert ("merge_joined", "concat_final") in edges
        assert ("merge_unjoined", "concat_final") in edges
        assert ("create_alignment_list", "split") in edges

    def test_external_inputs_are_the_papers_two_files(self):
        adag = build_blast2cap3_adag(4)
        assert {f.name for f in adag.external_inputs()} == {
            "transcripts.fasta", "alignments.out",
        }

    def test_final_output(self):
        adag = build_blast2cap3_adag(4)
        assert [f.name for f in adag.final_outputs()] == [
            "merged_transcriptome.fasta"
        ]

    def test_paper_model_annotates_runtimes(self):
        model = PaperTaskModel()
        adag = build_blast2cap3_adag(10, model=model)
        cap3_runtimes = [
            adag.jobs[f"run_cap3_{i}"].runtime for i in range(1, 11)
        ]
        assert sum(cap3_runtimes) == pytest.approx(model.cap3_total_s)
        assert adag.jobs["split"].runtime == model.split_runtime(10)

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            build_blast2cap3_adag(0)

    def test_dax_roundtrip(self):
        from repro.wms.dax import ADag

        adag = build_blast2cap3_adag(3, model=PaperTaskModel())
        back = ADag.from_xml(adag.to_xml())
        assert back.edges() == adag.edges()
        assert back.jobs["run_cap3_2"].runtime == adag.jobs["run_cap3_2"].runtime


class TestFigures:
    def test_fig2_shapes(self):
        adag = build_blast2cap3_adag(3)
        dot = workflow_figure(adag).render()
        assert "shape=ellipse" in dot  # tasks are ovals
        assert "shape=box, style=rounded" in dot  # files are squares
        assert "color=red" not in dot

    def test_fig3_red_setup_tasks(self):
        adag = build_blast2cap3_adag(3)
        dot = workflow_figure(adag, osg=True).render()
        assert "color=red" in dot

    def test_figure_covers_all_jobs_and_files(self):
        adag = build_blast2cap3_adag(4)
        graph = workflow_figure(adag)
        # jobs + distinct files
        files = {f.name for j in adag.jobs.values() for f, _ in j.uses}
        assert graph.node_count == len(adag) + len(files)


class TestPlanningBothSites:
    def test_osg_plan_decorates_compute_jobs(self):
        adag = build_blast2cap3_adag(4, model=PaperTaskModel())
        sites, tc, rc = default_catalogs()
        campus = plan(adag, site_name="sandhills", sites=sites,
                      transformations=tc, replicas=rc)
        grid = plan(adag, site_name="osg", sites=sites,
                    transformations=tc, replicas=rc)
        assert not campus.dag.jobs["run_cap3_1"].needs_setup
        assert grid.dag.jobs["run_cap3_1"].needs_setup

    def test_auxiliary_jobs_added(self):
        adag = build_blast2cap3_adag(4, model=PaperTaskModel())
        sites, tc, rc = default_catalogs()
        planned = plan(adag, site_name="sandhills", sites=sites,
                       transformations=tc, replicas=rc)
        aux = set(planned.auxiliary_jobs)
        assert "stage_in_transcripts_fasta" in aux
        assert "stage_in_alignments_out" in aux
        assert "stage_out_final" in aux


@pytest.fixture(scope="module")
def staged_workload(tmp_path_factory):
    tmp = tmp_path_factory.mktemp("workload")
    wl = generate_blast2cap3_workload(
        n_proteins=8,
        spec=TranscriptomeSpec(
            mean_fragments_per_gene=3.0, noise_transcripts=2, error_rate=0.002
        ),
        seed=55,
    )
    transcripts = tmp / "transcripts.fasta"
    alignments = tmp / "alignments.out"
    write_fasta(transcripts, wl.transcripts)
    write_tabular(alignments, wl.hits)
    return wl, transcripts, alignments


class TestRunLocal:
    def test_real_execution_matches_serial(self, staged_workload, tmp_path):
        wl, transcripts, alignments = staged_workload
        result = run_local(
            transcripts, alignments, tmp_path / "work", n=3, max_workers=4
        )
        assert result.dagman.success
        workflow_records = {
            (r.id, r.seq) for r in read_fasta(result.final_output)
        }
        serial = blast2cap3_serial(wl.transcripts, wl.hits)
        assert workflow_records == {
            (r.id, r.seq) for r in serial.output_records
        }

    def test_trace_covers_all_jobs(self, staged_workload, tmp_path):
        wl, transcripts, alignments = staged_workload
        result = run_local(
            transcripts, alignments, tmp_path / "work", n=2, max_workers=2
        )
        job_names = {a.job_name for a in result.dagman.trace}
        assert "run_cap3_1" in job_names
        assert "stage_in_transcripts_fasta" in job_names
        assert all(a.status.is_success for a in result.dagman.trace)


class TestSimulatedRuns:
    def test_sandhills_run_succeeds_with_no_failures(self):
        result, planned = simulate_paper_run(10, "sandhills", seed=1)
        assert result.success
        assert result.trace.retry_count == 0
        assert planned.site.name == "sandhills"

    def test_osg_run_has_setup_time(self):
        result, _ = simulate_paper_run(10, "osg", seed=1)
        assert result.success
        cap3 = [
            a for a in result.trace.successful()
            if a.transformation == "run_cap3"
        ]
        assert all(a.download_install_time > 0 for a in cap3)

    def test_unknown_platform(self):
        with pytest.raises(ValueError, match="unknown platform"):
            simulate_paper_run(10, "xsede")  # type: ignore[arg-type]

    def test_more_than_95_percent_reduction(self):
        model = PaperTaskModel()
        result, _ = simulate_paper_run(100, "sandhills", seed=1, model=model)
        reduction = 1 - result.trace.wall_time() / model.serial_walltime()
        assert reduction > 0.95
