"""ADag.validate() tests plus extra bio property tests (ORF symmetry,
affine/linear relationships over random sequences)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.bio.orf import find_orfs
from repro.bio.seq import reverse_complement
from repro.core.workflow_factory import build_blast2cap3_adag
from repro.wms.dax import ADag, AbstractJob, File
from repro.wms.statistics import render_site_breakdown

dna = st.text(alphabet="ACGT", min_size=0, max_size=120)


class TestAdagValidate:
    def test_blast2cap3_adag_is_clean(self):
        assert build_blast2cap3_adag(10).validate() == []

    def test_job_without_files_flagged(self):
        adag = ADag(name="w")
        adag.add_job(AbstractJob(id="bare", transformation="t"))
        assert any("uses no files" in p for p in adag.validate())

    def test_size_disagreement_flagged(self):
        adag = ADag(name="w")
        adag.add_job(
            AbstractJob(id="a", transformation="t").add_output(
                File("x.dat", size=100)
            )
        )
        adag.add_job(
            AbstractJob(id="b", transformation="t").add_input(
                File("x.dat", size=999)
            )
        )
        assert any("sizes" in p for p in adag.validate())

    def test_duplicate_producer_flagged(self):
        adag = ADag(name="w")
        for jid in ("a", "b"):
            adag.add_job(
                AbstractJob(id=jid, transformation="t").add_output(
                    File("x.dat")
                )
            )
        assert any("produced by both" in p for p in adag.validate())

    def test_redundant_explicit_edge_flagged(self):
        adag = ADag(name="w")
        adag.add_job(
            AbstractJob(id="a", transformation="t").add_output(File("x.dat"))
        )
        adag.add_job(
            AbstractJob(id="b", transformation="t").add_input(File("x.dat"))
        )
        adag.add_dependency("a", "b")
        assert any("duplicates a data dependency" in p for p in adag.validate())


class TestOrfProperties:
    @given(dna)
    @settings(max_examples=60, deadline=None)
    def test_strand_symmetry(self, seq):
        """ORFs of the reverse complement are the mirror of the
        original's: same proteins, frames negated."""
        fwd = find_orfs(seq, min_length_aa=5, require_start=False)
        rev = find_orfs(reverse_complement(seq), min_length_aa=5,
                        require_start=False)
        assert sorted((o.protein, -o.frame) for o in fwd) == sorted(
            (o.protein, o.frame) for o in rev
        )

    @given(dna)
    @settings(max_examples=60, deadline=None)
    def test_orfs_never_contain_stop(self, seq):
        for orf in find_orfs(seq, min_length_aa=2, require_start=False):
            assert "*" not in orf.protein

    @given(dna, st.integers(min_value=2, max_value=40))
    @settings(max_examples=40, deadline=None)
    def test_longer_floor_is_subset(self, seq, floor):
        loose = {
            (o.frame, o.start, o.end)
            for o in find_orfs(seq, min_length_aa=floor, require_start=False)
        }
        strict = {
            (o.frame, o.start, o.end)
            for o in find_orfs(seq, min_length_aa=floor + 10,
                               require_start=False)
        }
        assert strict <= loose


class TestAffineProperties:
    @given(dna.filter(lambda s: len(s) >= 1), dna.filter(lambda s: len(s) >= 1))
    @settings(max_examples=40, deadline=None)
    def test_affine_score_monotone_in_extend_cost(self, a, b):
        from repro.bio.affine import affine_global
        from repro.bio.matrices import dna_matrix

        m = dna_matrix()
        cheap = affine_global(a, b, matrix=m, gap_open=-6, gap_extend=-1)
        dear = affine_global(a, b, matrix=m, gap_open=-6, gap_extend=-4)
        assert cheap.score >= dear.score

    @given(dna.filter(lambda s: len(s) >= 1))
    @settings(max_examples=40, deadline=None)
    def test_self_alignment_gap_free(self, seq):
        from repro.bio.affine import affine_global
        from repro.bio.matrices import dna_matrix

        res = affine_global(seq, seq, matrix=dna_matrix(match=2),
                            gap_open=-6, gap_extend=-1)
        assert res.gaps == 0
        assert res.score == 2 * len(seq)


class TestSiteBreakdownRender:
    def test_renders_multi_site(self):
        from repro.core.workflow_factory import simulate_paper_run

        result, _ = simulate_paper_run(50, "osg", seed=2)
        text = render_site_breakdown(result.trace)
        assert "Per-site breakdown" in text
        assert "total kickstart" in text
