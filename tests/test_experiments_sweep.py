"""Tests for the multi-seed sweep runner."""

import pytest

from repro.experiments.sweep import (
    RunStats,
    run_config,
    run_sweep,
    sweep_table,
)
from repro.perfmodel.task_models import PaperTaskModel


class TestRunStats:
    def test_statistics(self):
        s = RunStats(
            platform="p", n=10,
            walltimes=(100.0, 200.0, 300.0), retries=(0, 1, 2),
        )
        assert s.mean == 200.0
        assert s.median == 200.0
        assert s.minimum == 100.0
        assert s.maximum == 300.0
        assert s.stdev == pytest.approx(100.0)
        assert s.cv == pytest.approx(0.5)
        assert s.total_retries == 3

    def test_single_run_has_zero_stdev(self):
        s = RunStats(platform="p", n=1, walltimes=(42.0,), retries=(0,))
        assert s.stdev == 0.0
        assert s.cv == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            RunStats(platform="p", n=1, walltimes=(), retries=())
        with pytest.raises(ValueError):
            RunStats(platform="p", n=1, walltimes=(1.0,), retries=(0, 1))


@pytest.fixture(scope="module")
def small_sweep():
    return run_sweep(
        ["sandhills", "cloud"], [10, 50], seeds=range(2),
        model=PaperTaskModel(),
    )


class TestSweep:
    def test_all_configs_present(self, small_sweep):
        assert set(small_sweep.configs) == {
            ("sandhills", 10), ("sandhills", 50),
            ("cloud", 10), ("cloud", 50),
        }
        assert small_sweep.platforms() == ["cloud", "sandhills"]
        assert small_sweep.ns() == [10, 50]

    def test_each_config_has_all_seeds(self, small_sweep):
        for stats in small_sweep.configs.values():
            assert len(stats.walltimes) == 2

    def test_best_n(self, small_sweep):
        # More partitions -> shorter wall time in this range.
        assert small_sweep.best_n("sandhills") == 50

    def test_run_config_deterministic(self):
        model = PaperTaskModel()
        a = run_config("sandhills", 10, seeds=[1], model=model)
        b = run_config("sandhills", 10, seeds=[1], model=model)
        assert a.walltimes == b.walltimes

    def test_table_renders(self, small_sweep):
        text = sweep_table(small_sweep, title="t").render()
        assert "sandhills" in text
        assert "cv" in text
