"""Tests for HSP extension and tabular I/O."""

import io

import pytest

from repro.bio.matrices import blosum62
from repro.blast.extend import UngappedHSP, gapped_extend, ungapped_extend
from repro.blast.tabular import TabularHit, parse_line, read_tabular, write_tabular

M = blosum62()


class TestUngappedExtend:
    def test_extends_over_identical_region(self):
        q = M.encode("XXXXMEDLKVWXXXX")
        s = M.encode("PPPPMEDLKVWPPPP")
        hsp = ungapped_extend(q, s, 6, 6, M.matrix, x_drop=16)
        assert hsp.q_start <= 4
        assert hsp.q_end >= 11
        assert hsp.score > 0

    def test_stops_at_xdrop(self):
        # Identical core flanked by strongly negative context.
        q = M.encode("WWWW" + "MEDLKV" + "WWWW")
        s = M.encode("CCCC" + "MEDLKV" + "CCCC")
        hsp = ungapped_extend(q, s, 4, 4, M.matrix, x_drop=5)
        assert hsp.q_start == 4
        assert hsp.q_end == 10

    def test_anchor_validation(self):
        q = M.encode("MEDL")
        with pytest.raises(ValueError, match="anchor"):
            ungapped_extend(q, q, 10, 0, M.matrix)

    def test_hsp_span_validation(self):
        with pytest.raises(ValueError, match="equal length"):
            UngappedHSP(q_start=0, q_end=5, s_start=0, s_end=4, score=10)

    def test_score_is_sum_of_parts(self):
        q = M.encode("MEDLKV")
        hsp = ungapped_extend(q, q, 3, 3, M.matrix, x_drop=100)
        expected = sum(M.score(c, c) for c in "MEDLKV")
        assert hsp.score == expected
        assert (hsp.q_start, hsp.q_end) == (0, 6)


class TestGappedExtend:
    def test_recovers_gapped_alignment(self):
        # Query has a 2-residue insertion relative to subject.
        query = "AAAAMEDLKVWWGGMEDLKVWWAAAA"
        subject = "PPPPMEDLKVWWMEDLKVWWPPPP"
        hsp = UngappedHSP(q_start=4, q_end=12, s_start=4, s_end=12, score=50)
        aln = gapped_extend(query, subject, hsp, M, gap=-6)
        assert "-" in aln.aligned_b
        assert aln.score > 50

    def test_coordinates_in_full_sequence_space(self):
        query = "X" * 60 + "MEDLKVW" + "X" * 60
        subject = "P" * 30 + "MEDLKVW" + "P" * 30
        hsp = UngappedHSP(q_start=60, q_end=67, s_start=30, s_end=37, score=40)
        aln = gapped_extend(query, subject, hsp, M, window_pad=10)
        assert query[aln.a_start : aln.a_end] == aln.aligned_a.replace("-", "")
        assert subject[aln.b_start : aln.b_end] == aln.aligned_b.replace("-", "")
        assert "MEDLKVW" in aln.aligned_a


class TestTabular:
    def hit(self, **over):
        base = dict(
            qseqid="t1",
            sseqid="prot9",
            pident=98.5,
            length=200,
            mismatch=3,
            gapopen=1,
            qstart=1,
            qend=600,
            sstart=1,
            send=200,
            evalue=1e-50,
            bitscore=350.2,
        )
        base.update(over)
        return TabularHit(**base)

    def test_format_parse_roundtrip(self):
        h = self.hit()
        assert parse_line(h.format()) == h

    def test_minus_frame_property(self):
        assert self.hit(qstart=600, qend=1).is_minus_frame
        assert not self.hit().is_minus_frame

    def test_validation(self):
        with pytest.raises(ValueError):
            self.hit(pident=150.0)
        with pytest.raises(ValueError):
            self.hit(qseqid="")
        with pytest.raises(ValueError):
            self.hit(evalue=-1.0)
        with pytest.raises(ValueError):
            self.hit(mismatch=-1)

    def test_field_count_enforced(self):
        with pytest.raises(ValueError, match="12 tab-separated"):
            parse_line("a\tb\tc")

    def test_stream_roundtrip(self):
        hits = [self.hit(qseqid=f"t{i}") for i in range(5)]
        buf = io.StringIO()
        assert write_tabular(buf, hits) == 5
        buf.seek(0)
        assert list(read_tabular(buf)) == hits

    def test_comments_and_blanks_skipped(self):
        text = "# BLASTX 2.2.28+\n\n" + self.hit().format() + "\n"
        assert len(list(read_tabular(io.StringIO(text)))) == 1

    def test_path_roundtrip(self, tmp_path):
        path = tmp_path / "alignments.out"
        hits = [self.hit(qseqid=f"t{i}") for i in range(3)]
        write_tabular(path, hits)
        assert list(read_tabular(path)) == hits

    def test_evalue_rendering(self):
        assert "0.0" in self.hit(evalue=0.0).format()
        line = self.hit(evalue=2.5e-30).format()
        assert "e-30" in line
