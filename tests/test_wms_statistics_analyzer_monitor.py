"""Tests for statistics, analyzer, and the JSONL trace log."""

import pytest

from repro.dagman.dag import Dag, DagJob
from repro.dagman.events import JobAttempt, JobStatus, WorkflowTrace
from repro.dagman.scheduler import DagmanResult, DagmanScheduler, NodeState
from repro.sim.cluster import CampusCluster
from repro.sim.engine import Simulator
from repro.sim.rng import RngStreams
from repro.wms.analyzer import analyze, render_analysis
from repro.wms.monitor import (
    append_attempt,
    progress_line,
    read_trace,
    write_trace,
)
from repro.wms.statistics import per_transformation, render_report, summarize


def attempt(name, transformation="run_cap3", status=JobStatus.SUCCEEDED,
            attempt_no=1, submit=0.0, setup=50.0, start=470.0, end=3_000.0,
            error=None):
    return JobAttempt(
        job_name=name, transformation=transformation, site="osg",
        machine="m1", attempt=attempt_no, submit_time=submit,
        setup_start=setup, exec_start=start, exec_end=end, status=status,
        error=error,
    )


def sample_trace():
    trace = WorkflowTrace()
    trace.add(attempt("cap3_1"))
    trace.add(attempt("cap3_2", end=4_000.0))
    trace.add(attempt("list_1", transformation="create_list",
                      setup=10.0, start=10.0, end=200.0))
    trace.add(attempt("cap3_3", status=JobStatus.EVICTED, end=1_000.0))
    trace.add(attempt("cap3_3", attempt_no=2, end=3_500.0))
    return trace


class TestStatistics:
    def test_summary_fields(self):
        stats = summarize(sample_trace())
        assert stats.wall_time == 4_000.0
        assert stats.total_jobs == 4
        assert stats.succeeded_jobs == 4
        assert stats.failed_attempts == 1
        assert stats.retries == 1

    def test_per_transformation_breakdown(self):
        groups = {t.transformation: t for t in per_transformation(sample_trace())}
        assert set(groups) == {"run_cap3", "create_list"}
        cap3 = groups["run_cap3"]
        assert cap3.count == 3
        # kickstart = end - 470 for the successful cap3 attempts
        assert cap3.mean_kickstart == pytest.approx(
            ((3000 - 470) + (4000 - 470) + (3500 - 470)) / 3
        )
        assert groups["create_list"].mean_download_install == 0.0
        assert cap3.mean_download_install == 420.0

    def test_kickstart_excludes_failed_attempts(self):
        groups = {t.transformation: t for t in per_transformation(sample_trace())}
        # the evicted attempt (kickstart 530) must not drag the mean
        assert groups["run_cap3"].count == 3

    def test_speedup(self):
        stats = summarize(sample_trace())
        assert stats.speedup == pytest.approx(
            stats.cumulative_kickstart / stats.wall_time
        )

    def test_render_report_mentions_paper_statistics(self):
        text = render_report(summarize(sample_trace()), title="osg n=100")
        assert "Workflow wall time" in text
        assert "mean kickstart (s)" in text
        assert "mean download/install (s)" in text
        assert "run_cap3" in text

    def test_empty_trace(self):
        stats = summarize(WorkflowTrace())
        assert stats.wall_time == 0.0
        assert stats.speedup == 0.0
        assert stats.transformations == []


def failing_result():
    dag = Dag()
    dag.add_job(DagJob(name="ok", transformation="t", runtime=10))
    dag.add_job(DagJob(name="bad", transformation="t", runtime=10))
    dag.add_job(DagJob(name="blocked", transformation="t", runtime=10))
    dag.add_edge("bad", "blocked")
    trace = WorkflowTrace()
    trace.add(attempt("ok"))
    trace.add(attempt("bad", status=JobStatus.FAILED, error="boom\nlast line"))
    return DagmanResult(
        success=False,
        trace=trace,
        states={
            "ok": NodeState.DONE,
            "bad": NodeState.FAILED,
            "blocked": NodeState.UNRUNNABLE,
        },
        wall_time=3000.0,
    )


class TestAnalyzer:
    def test_report_structure(self):
        report = analyze(failing_result())
        assert not report.success
        assert report.total_jobs == 3
        assert report.done == 1
        assert [d.job_name for d in report.failed] == ["bad"]
        assert report.unrunnable == ["blocked"]
        assert "1 job(s) failed" in report.verdict

    def test_last_error_extracted(self):
        report = analyze(failing_result())
        assert "boom" in report.failed[0].last_error

    def test_render(self):
        text = render_analysis(analyze(failing_result()))
        assert "bad" in text
        assert "blocked" in text
        assert "last line" in text

    def test_successful_run(self):
        dag = Dag()
        dag.add_job(DagJob(name="a", transformation="t", runtime=5))
        sim = Simulator()
        env = CampusCluster(sim, streams=RngStreams(seed=0))
        result = DagmanScheduler(dag, env).run()
        report = analyze(result)
        assert report.success
        assert report.verdict == "all jobs completed successfully"


class TestMonitor:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        trace = sample_trace()
        assert write_trace(path, trace) == 5
        back = read_trace(path)
        assert len(back) == 5
        assert back.attempts[0] == trace.attempts[0]
        assert back.attempts[3].status is JobStatus.EVICTED

    def test_error_preserved(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        write_trace(
            path, [attempt("x", status=JobStatus.FAILED, error="stack trace")]
        )
        assert read_trace(path).attempts[0].error == "stack trace"

    def test_append(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        append_attempt(path, attempt("a"))
        append_attempt(path, attempt("b"))
        assert len(read_trace(path)) == 2

    def test_progress_line(self):
        line = progress_line(sample_trace(), total_jobs=10)
        assert line.startswith("4/10 jobs done (40.0%)")
        assert "1 failures" in line
        assert "1 retries" in line
