"""Tests for the alignment kernels (global / local / overlap DP)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.bio.alignment import (
    AlignmentMode,
    global_align,
    local_align,
    overlap_align,
)
from repro.bio.matrices import blosum62, dna_matrix

dna = st.text(alphabet="ACGT", min_size=1, max_size=60)


class TestGlobalAlign:
    def test_identical_protein(self):
        res = global_align("MEDLKV", "MEDLKV")
        assert res.identity == 1.0
        assert res.score == sum(blosum62().score(c, c) for c in "MEDLKV")
        assert res.aligned_a == "MEDLKV"

    def test_single_gap(self):
        res = global_align("ACGT", "ACT", matrix=dna_matrix(), gap=-4)
        assert res.length == 4
        assert "-" in res.aligned_b
        assert res.score == 3 * 2 - 4

    def test_empty_vs_nonempty(self):
        res = global_align("", "ACG", matrix=dna_matrix(), gap=-4)
        assert res.score == -12
        assert res.aligned_a == "---"

    def test_gap_penalty_must_be_negative(self):
        with pytest.raises(ValueError, match="negative"):
            global_align("A", "A", gap=0)

    @given(dna, dna)
    @settings(max_examples=50, deadline=None)
    def test_aligned_strings_reconstruct_inputs(self, a, b):
        res = global_align(a, b, matrix=dna_matrix(), gap=-3)
        assert res.aligned_a.replace("-", "") == a
        assert res.aligned_b.replace("-", "") == b
        assert len(res.aligned_a) == len(res.aligned_b)

    @given(dna)
    @settings(max_examples=50, deadline=None)
    def test_self_alignment_is_perfect(self, a):
        res = global_align(a, a, matrix=dna_matrix(match=2), gap=-3)
        assert res.identity == 1.0
        assert res.score == 2 * len(a)

    @given(dna, dna)
    @settings(max_examples=50, deadline=None)
    def test_symmetry_of_score(self, a, b):
        m = dna_matrix()
        fwd = global_align(a, b, matrix=m, gap=-3)
        rev = global_align(b, a, matrix=m, gap=-3)
        assert fwd.score == rev.score


class TestLocalAlign:
    def test_finds_embedded_match(self):
        res = local_align(
            "TTTTACGTACGTTTTT", "GGGGACGTACGGGG", matrix=dna_matrix(), gap=-4
        )
        assert res.aligned_a == "ACGTACG"
        assert res.identity == 1.0

    def test_no_positive_segment(self):
        res = local_align("AAAA", "TTTT", matrix=dna_matrix(), gap=-4)
        assert res.score == 0
        assert res.length == 0

    def test_coordinates_point_into_originals(self):
        a, b = "XXXMEDLKVXXX", "PPPMEDLKVPPP"
        res = local_align(a, b)
        assert a[res.a_start : res.a_end] == res.aligned_a.replace("-", "")
        assert b[res.b_start : res.b_end] == res.aligned_b.replace("-", "")

    @given(dna, dna)
    @settings(max_examples=50, deadline=None)
    def test_local_score_nonnegative_and_geq_pieces(self, a, b):
        res = local_align(a, b, matrix=dna_matrix(), gap=-3)
        assert res.score >= 0

    @given(dna, dna)
    @settings(max_examples=50, deadline=None)
    def test_local_at_least_global(self, a, b):
        m = dna_matrix()
        assert (
            local_align(a, b, matrix=m, gap=-3).score
            >= global_align(a, b, matrix=m, gap=-3).score
        )

    @given(dna, dna)
    @settings(max_examples=50, deadline=None)
    def test_spans_reconstruct(self, a, b):
        res = local_align(a, b, matrix=dna_matrix(), gap=-3)
        assert a[res.a_start : res.a_end] == res.aligned_a.replace("-", "")
        assert b[res.b_start : res.b_end] == res.aligned_b.replace("-", "")


class TestOverlapAlign:
    def test_clean_dovetail(self):
        # suffix of a == prefix of b, overlap of 8
        a = "TTTTTTTTACGTACGT"
        b = "ACGTACGTGGGGGGGG"
        res = overlap_align(a, b)
        assert res.a_end == len(a)
        assert res.b_start == 0
        assert res.aligned_a == "ACGTACGT"
        assert res.identity == 1.0

    def test_containment_detected(self):
        a = "TTTTACGTACGTTTTT"
        b = "ACGTACGT"
        res = overlap_align(a, b)
        assert res.b_start == 0
        assert res.b_end == len(b)
        assert res.identity == 1.0

    def test_no_overlap_scores_low(self):
        res = overlap_align("AAAAAAAA", "TTTTTTTT")
        # Best dovetail of unrelated sequences is tiny or negative.
        assert res.score <= 2

    def test_mode_recorded(self):
        assert overlap_align("ACGT", "ACGT").mode is AlignmentMode.OVERLAP

    @given(dna, dna)
    @settings(max_examples=50, deadline=None)
    def test_overlap_ends_at_a_end_or_b_end(self, a, b):
        res = overlap_align(a, b)
        assert res.a_end == len(a) or res.b_end == len(b)

    @given(dna.filter(lambda s: len(s) >= 10))
    @settings(max_examples=50, deadline=None)
    def test_split_reads_overlap_perfectly(self, seq):
        # Take two overlapping windows of one sequence; the dovetail
        # must recover at least the shared region's score.
        third = len(seq) // 3
        a = seq[: 2 * third + third // 2]
        b = seq[third:]
        res = overlap_align(a, b)
        shared = len(a) - third
        assert res.score >= 2 * shared - 6  # allow one gap's slack
