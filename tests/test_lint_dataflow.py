"""Property and oracle tests for the dataflow/provenance pass.

The fixpoint in :mod:`repro.lint.dataflow` is cross-checked against a
naive BFS reachability oracle on randomly generated workflows: a job is
runnable iff every transitive input requirement bottoms out in a
replica-backed (or producer-less-but-replicated) file. Hypothesis
drives random DAG shapes through both and they must agree exactly.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.lint import lint
from repro.lint.dataflow import (
    availability_fixpoint,
    components,
    reachable_jobs,
)
from repro.lint.registry import LintContext
from repro.wms.catalogs import ReplicaCatalog
from repro.wms.dax import ADag, AbstractJob, File


def _job(jid, inputs=(), outputs=()):
    j = AbstractJob(id=jid, transformation="t")
    for f in inputs:
        j.add_input(File(f))
    for f in outputs:
        j.add_output(File(f))
    return j


def _adag(*jobs):
    adag = ADag(name="fixture")
    for j in jobs:
        adag.add_job(j)
    return adag


def _ctx(adag, replicas):
    return LintContext(adag=adag, replicas=replicas)


def naive_runnable(adag: ADag, replicas: ReplicaCatalog) -> set[str]:
    """Oracle: repeatedly run any job whose inputs are all present."""
    have = set()
    for job in adag.jobs.values():
        for f in job.inputs():
            if replicas.has(f.name):
                have.add(f.name)
        for f in job.outputs():
            if replicas.has(f.name):
                have.add(f.name)
    ran: set[str] = set()
    progress = True
    while progress:
        progress = False
        for job in adag.jobs.values():
            if job.id in ran:
                continue
            if all(f.name in have for f in job.inputs()):
                ran.add(job.id)
                have |= {f.name for f in job.outputs()}
                progress = True
    return ran


# -- random workflow generation -------------------------------------------

#: Small closed world of LFNs so collisions (shared files) are common.
LFNS = [f"f{i}.dat" for i in range(8)]


@st.composite
def random_workflow(draw):
    n_jobs = draw(st.integers(min_value=1, max_value=6))
    adag = ADag(name="random")
    produced: set[str] = set()
    for i in range(n_jobs):
        # draw outputs first, disallowing write-write conflicts (the
        # linter flags those separately; the oracle assumes one producer)
        candidates = [f for f in LFNS if f not in produced]
        outputs = draw(
            st.lists(
                st.sampled_from(candidates) if candidates else st.nothing(),
                max_size=2,
                unique=True,
            )
        ) if candidates else []
        inputs = draw(
            st.lists(st.sampled_from(LFNS), max_size=3, unique=True)
        )
        inputs = [f for f in inputs if f not in outputs]
        produced |= set(outputs)
        adag.add_job(_job(f"j{i}", inputs, outputs))
    replicated = draw(
        st.lists(st.sampled_from(LFNS), max_size=4, unique=True)
    )
    rc = ReplicaCatalog()
    for lfn in replicated:
        rc.add(lfn, f"file:///{lfn}")
    return adag, rc


class TestFixpointAgainstOracle:
    @given(random_workflow())
    @settings(max_examples=120, deadline=None)
    def test_satisfiable_set_matches_naive_reachability(self, wf):
        adag, rc = wf
        ctx = _ctx(adag, rc)
        assert reachable_jobs(ctx) == naive_runnable(adag, rc)

    @given(random_workflow())
    @settings(max_examples=60, deadline=None)
    def test_lint_never_crashes_on_random_workflows(self, wf):
        adag, rc = wf
        report = lint(adag, replicas=rc)
        # every finding references a real rule and a location
        for f in report.findings:
            assert f.rule and f.location

    @given(random_workflow())
    @settings(max_examples=60, deadline=None)
    def test_available_files_are_closed_under_production(self, wf):
        adag, rc = wf
        available, satisfiable = availability_fixpoint(_ctx(adag, rc))
        for job in adag.jobs.values():
            if job.id in satisfiable:
                for f in job.outputs():
                    assert f.name in available
            else:
                # at least one input is unavailable, else monotonicity
                # was violated
                assert any(
                    f.name not in available for f in job.inputs()
                )


class TestComponents:
    def test_single_component(self):
        adag = _adag(
            _job("a", outputs=["x.dat"]), _job("b", inputs=["x.dat"])
        )
        comps = components(_ctx(adag, ReplicaCatalog()))
        assert comps == [{"a", "b"}]

    def test_islands_sorted_largest_first(self):
        adag = _adag(
            _job("a", outputs=["x.dat"]),
            _job("b", inputs=["x.dat"], outputs=["y.dat"]),
            _job("c", inputs=["y.dat"]),
            _job("lone", inputs=["other.dat"]),
        )
        comps = components(_ctx(adag, ReplicaCatalog()))
        assert comps == [{"a", "b", "c"}, {"lone"}]

    @given(random_workflow())
    @settings(max_examples=60, deadline=None)
    def test_components_partition_the_jobs(self, wf):
        adag, rc = wf
        comps = components(_ctx(adag, rc))
        seen: set[str] = set()
        for comp in comps:
            assert not (comp & seen)
            seen |= comp
        assert seen == set(adag.jobs)


class TestFlowRules:
    def test_flow001_names_the_starved_root(self):
        adag = _adag(
            _job("a", inputs=["ghost.txt"], outputs=["x.dat"]),
            _job("b", inputs=["x.dat"], outputs=["y.dat"]),
        )
        report = lint(adag, replicas=ReplicaCatalog())
        flow = report.by_rule("FLOW001")
        assert len(flow) == 1
        assert flow[0].location == "job:b"
        assert "'a'" in flow[0].message

    def test_flow_rules_stand_down_on_cycles(self):
        a = _job("a", inputs=["fb.dat"], outputs=["fa.dat"])
        b = _job("b", inputs=["fa.dat"], outputs=["fb.dat"])
        report = lint(_adag(a, b), replicas=ReplicaCatalog())
        fired = {f.rule for f in report.findings}
        assert "DAX001" in fired
        assert not fired & {"FLOW001", "FLOW002"}

    def test_flow003_respects_enable_reuse(self):
        from repro.wms.planner import PlannerOptions

        rc = ReplicaCatalog()
        rc.add("raw.txt", "file:///raw.txt")
        rc.add("x.dat", "file:///x.dat")
        adag = _adag(
            _job("a", inputs=["raw.txt"], outputs=["x.dat"]),
            _job("b", inputs=["x.dat"], outputs=["y.dat"]),
        )
        noisy = lint(adag, replicas=rc)
        assert noisy.by_rule("FLOW003")
        quiet = lint(
            adag, replicas=rc,
            options=PlannerOptions(enable_reuse=True, lint="off"),
        )
        assert not quiet.by_rule("FLOW003")

    def test_flow004_quiet_on_bag_of_tasks(self):
        # independent single-job tasks are a legitimate shape, not islands
        adag = _adag(
            _job("t0", inputs=["a.in"], outputs=["a.out"]),
            _job("t1", inputs=["b.in"], outputs=["b.out"]),
            _job("t2", inputs=["c.in"], outputs=["c.out"]),
        )
        report = lint(adag)
        assert not report.by_rule("FLOW004")


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(pytest.main([__file__, "-q"]))
