"""SARIF export, suppression/baseline semantics, CLI exit codes, and
the end-to-end acceptance scenario from the issue: the paper workflow
against a doctored site catalog where no OSG slot has CAP3 must yield a
never-matchable-job finding naming the job and the closest missing
capability, emit schema-valid SARIF, and fail the plan fast.
"""

from __future__ import annotations

import json

import pytest

from repro.core.workflow_factory import (
    build_blast2cap3_adag,
    default_catalogs,
)
from repro.lint import LintConfig, Severity, lint
from repro.lint.cli import main as lint_main
from repro.lint.feasibility import default_pools, pools_from_mapping
from repro.lint.sarif import report_to_sarif, sarif_json, validate_sarif
from repro.lint.suppress import (
    apply_baseline,
    load_baseline,
    write_baseline,
)
from repro.perfmodel.task_models import PaperTaskModel
from repro.wms.catalogs import ReplicaCatalog
from repro.wms.dax import ADag, AbstractJob, File
from repro.wms.planner import (
    LintFailure,
    PlannerOptions,
    plan,
)

NO_CAP3 = {"osg": {"software": ["has_python", "has_biopython"]}}


def _conflicted_adag():
    adag = ADag(name="conflicted")
    for jid in ("a", "b"):
        j = AbstractJob(id=jid, transformation="t")
        j.add_output(File("x.dat"))
        adag.add_job(j)
    return adag


class TestSarif:
    def test_clean_report_is_valid_sarif(self):
        adag = build_blast2cap3_adag(8, model=PaperTaskModel())
        sites, tc, rc = default_catalogs()
        report = lint(adag, sites=sites, transformations=tc,
                      replicas=rc, site="sandhills")
        doc = report_to_sarif(report)
        assert validate_sarif(doc) == []
        assert doc["runs"][0]["results"] == []
        declared = {r["id"] for r in
                    doc["runs"][0]["tool"]["driver"]["rules"]}
        assert {"DAX001", "FLOW001", "RES001", "DET001"} <= declared

    def test_findings_map_to_results(self):
        report = lint(_conflicted_adag())
        doc = report_to_sarif(report, artifact="conflicted.dax")
        assert validate_sarif(doc) == []
        results = doc["runs"][0]["results"]
        assert [r["ruleId"] for r in results] == ["DAX003"]
        (result,) = results
        assert result["level"] == "error"
        logical = result["locations"][0]["logicalLocations"][0]
        assert logical["fullyQualifiedName"] == "file:x.dat"
        assert result["partialFingerprints"]["reproLint/v1"]
        assert doc["runs"][0]["artifacts"][0]["location"]["uri"] == (
            "conflicted.dax"
        )

    def test_suppressed_findings_carry_suppressions(self):
        config = LintConfig(suppress=("DAX003:file:x.dat",))
        report = lint(_conflicted_adag(), config=config)
        doc = report_to_sarif(report)
        assert validate_sarif(doc) == []
        (result,) = doc["runs"][0]["results"]
        assert result["suppressions"][0]["kind"] == "external"

    def test_validator_catches_structural_damage(self):
        report = lint(_conflicted_adag())
        doc = report_to_sarif(report)
        doc["runs"][0]["results"][0]["level"] = "fatal"
        del doc["runs"][0]["results"][0]["message"]
        errors = validate_sarif(doc)
        assert any("bad level" in e for e in errors)
        assert any("message.text" in e for e in errors)

    def test_sarif_json_round_trips(self):
        report = lint(_conflicted_adag())
        doc = json.loads(sarif_json(report))
        assert doc["version"] == "2.1.0"


class TestSuppressionSemantics:
    def test_suppressed_finding_does_not_fail_the_report(self):
        config = LintConfig(suppress=("DAX003:*",))
        report = lint(_conflicted_adag(), config=config)
        assert report.ok
        assert len(report.suppressed()) == 1
        assert not report.active()
        assert "suppressed" in report.verdict

    def test_severity_promotion_and_demotion(self):
        config = LintConfig(severity={"DAX003": "warning"})
        report = lint(_conflicted_adag(), config=config)
        assert report.ok  # demoted to warning: no errors left
        assert report.findings[0].severity is Severity.WARNING

    def test_off_disables_the_rule(self):
        config = LintConfig(severity={"DAX003": "off"})
        report = lint(_conflicted_adag(), config=config)
        assert not report.by_rule("DAX003")
        assert "DAX003" in report.disabled_rules
        assert "DAX003" not in report.checked_rules

    def test_bad_config_rejected(self):
        with pytest.raises(ValueError, match="bad severity"):
            LintConfig(severity={"DAX003": "loud"})
        with pytest.raises(ValueError, match="unknown lint config"):
            LintConfig.from_dict({"severiti": {}})

    def test_baseline_round_trip(self, tmp_path):
        path = tmp_path / "baseline.json"
        first = lint(_conflicted_adag())
        assert write_baseline(first, path) == 1
        fingerprints = load_baseline(path)
        second = lint(_conflicted_adag(), baseline=fingerprints)
        assert second.ok
        assert second.findings[0].suppressed_by == "baseline"
        # a *new* defect is not hidden by the old baseline
        adag = _conflicted_adag()
        extra = AbstractJob(id="c", transformation="t")
        extra.add_input(File("ghost.txt"))
        extra.add_output(File("y.dat"))
        adag.add_job(extra)
        third = lint(adag, replicas=ReplicaCatalog(),
                     baseline=fingerprints)
        assert not third.ok
        active_rules = {f.rule for f in third.active()}
        assert "DAX002" in active_rules
        assert "DAX003" not in active_rules

    def test_apply_baseline_counts(self):
        report = lint(_conflicted_adag())
        fp = report.findings[0].fingerprint
        assert apply_baseline(report, frozenset({fp})) == 1
        assert apply_baseline(report, frozenset({fp})) == 0  # idempotent


class TestCliContracts:
    def test_suppressed_only_findings_exit_zero(self, tmp_path, capsys):
        config = tmp_path / "lint.json"
        config.write_text(json.dumps({"suppress": ["PLAN005:*", "RES003:*"]}))
        rc = lint_main(
            ["-n", "12", "--site", "osg", "--config", str(config),
             "--fail-on", "warning"]
        )
        assert rc == 0, capsys.readouterr().out

    def test_fail_on_warning_tightens_exit(self, capsys):
        # PLAN005/RES003 warnings on osg: rc 0 normally, 1 under --fail-on
        assert lint_main(["-n", "12", "--site", "osg"]) == 0
        capsys.readouterr()
        assert lint_main(
            ["-n", "12", "--site", "osg", "--fail-on", "warning"]
        ) == 1

    def test_json_output_is_pure(self, capsys):
        rc = lint_main(["-n", "5", "--site", "sandhills", "--format", "json"])
        assert rc == 0
        out = capsys.readouterr().out
        json.loads(out)  # stdout is exactly one JSON document

    def test_sarif_format_on_stdout(self, capsys):
        rc = lint_main(["-n", "5", "--site", "sandhills",
                        "--format", "sarif"])
        assert rc == 0
        doc = json.loads(capsys.readouterr().out)
        assert validate_sarif(doc) == []

    def test_write_baseline_then_clean_run(self, tmp_path, capsys):
        baseline = tmp_path / "b.json"
        rc = lint_main(
            ["-n", "12", "--site", "osg", "--setup-mode", "never",
             "--write-baseline", str(baseline)]
        )
        assert rc == 0
        capsys.readouterr()
        rc = lint_main(
            ["-n", "12", "--site", "osg", "--setup-mode", "never",
             "--baseline", str(baseline)]
        )
        assert rc == 0  # baseline-only findings exit 0

    def test_pools_flag_drives_feasibility(self, tmp_path, capsys):
        pools = tmp_path / "pools.json"
        pools.write_text(json.dumps(NO_CAP3))
        sarif_path = tmp_path / "out.sarif"
        rc = lint_main(
            ["-n", "12", "--site", "osg", "--setup-mode", "never",
             "--pools", str(pools), "--sarif", str(sarif_path)]
        )
        assert rc == 1
        assert "RES001" in capsys.readouterr().out
        doc = json.loads(sarif_path.read_text())
        assert validate_sarif(doc) == []


class TestAcceptanceDoctoredPool:
    """The issue's acceptance scenario, end to end."""

    def _doctored_pools(self):
        return pools_from_mapping(NO_CAP3, base=default_pools())

    def test_res001_names_job_and_capability(self):
        adag = build_blast2cap3_adag(12, model=PaperTaskModel())
        sites, tc, rc = default_catalogs()
        planned = plan(
            adag, site_name="osg", sites=sites, transformations=tc,
            replicas=rc,
            options=PlannerOptions(setup_mode="never", lint="off"),
        )
        report = lint(adag, replicas=rc, planned=planned,
                      pools={"osg": self._doctored_pools()["osg"]})
        findings = report.by_rule("RES001")
        assert len(findings) == 1
        (f,) = findings
        assert not report.ok
        assert f.location.startswith("job:")
        assert "has_cap3" in f.message  # the closest missing capability
        # names at least one concrete doomed job
        compute = set(planned.job_map.values())
        assert any(name in f.message for name in sorted(compute))
        doc = report_to_sarif(report)
        assert validate_sarif(doc) == []
        assert any(
            r["ruleId"] == "RES001" for r in doc["runs"][0]["results"]
        )

    def test_plan_fail_fasts_on_doctored_pools(self):
        adag = build_blast2cap3_adag(12, model=PaperTaskModel())
        sites, tc, rc = default_catalogs()
        with pytest.raises(LintFailure) as excinfo:
            plan(
                adag, site_name="osg", sites=sites, transformations=tc,
                replicas=rc,
                options=PlannerOptions(setup_mode="never"),
                pools=self._doctored_pools(),
            )
        report = excinfo.value.report
        assert report.by_rule("RES001")
        assert "has_cap3" in str(excinfo.value)

    def test_healthy_pools_plan_fine_with_setup(self):
        adag = build_blast2cap3_adag(12, model=PaperTaskModel())
        sites, tc, rc = default_catalogs()
        planned = plan(
            adag, site_name="osg", sites=sites, transformations=tc,
            replicas=rc,
        )
        assert planned.lint_report is not None
        assert planned.lint_report.ok


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(pytest.main([__file__, "-q"]))
