"""Tests for the serial blast2cap3 driver on synthetic workloads."""

import pytest

from repro.core.blast2cap3 import blast2cap3_serial, merge_cluster
from repro.core.clusters import ProteinCluster
from repro.datagen.transcripts import TranscriptomeSpec
from repro.datagen.workload import generate_blast2cap3_workload


@pytest.fixture(scope="module")
def workload():
    return generate_blast2cap3_workload(
        n_proteins=12,
        spec=TranscriptomeSpec(
            mean_fragments_per_gene=3.0,
            noise_transcripts=4,
            error_rate=0.002,
        ),
        seed=101,
    )


@pytest.fixture(scope="module")
def result(workload):
    return blast2cap3_serial(workload.transcripts, workload.hits)


class TestSerialBlast2Cap3:
    def test_reduces_transcript_count(self, workload, result):
        # The paper's §II claim: protein-guided merging reduces the
        # sequence count (8-9 % on wheat; our synthetic redundancy is
        # higher, so the reduction is at least a few percent).
        assert result.output_count < result.input_count
        assert result.reduction_fraction > 0.05

    def test_every_input_accounted_exactly_once(self, workload, result):
        input_ids = {t.id for t in workload.transcripts}
        unjoined_ids = {t.id for t in result.unjoined}
        # Members absorbed into contigs:
        merged = input_ids - unjoined_ids
        assert unjoined_ids <= input_ids
        assert result.merged_transcript_count == len(merged)
        assert merged | unjoined_ids == input_ids

    def test_noise_transcripts_pass_through(self, workload, result):
        unjoined_ids = {t.id for t in result.unjoined}
        noise = {t.id for t in workload.transcripts if t.id.startswith("tr_noise")}
        assert noise <= unjoined_ids

    def test_contigs_are_namespaced_by_protein(self, result):
        for contig in result.joined:
            assert ".Contig" in contig.id

    def test_merged_fragments_come_from_same_gene(self, workload, result):
        # No artificially fused sequences: each contig's members all
        # originate from a single gene.
        origin = workload.transcriptome.origin
        for contig in result.joined:
            protein_id = contig.id.split(".Contig")[0]
            # contig ids embed the cluster's protein
            assert protein_id in {p.id for p in workload.proteins}

    def test_cluster_counts_recorded(self, workload, result):
        assert result.cluster_count >= result.mergeable_cluster_count
        assert result.mergeable_cluster_count > 0

    def test_duplicate_transcripts_rejected(self, workload):
        doubled = workload.transcripts + workload.transcripts[:1]
        with pytest.raises(ValueError, match="duplicate"):
            blast2cap3_serial(doubled, workload.hits)

    def test_empty_inputs(self):
        result = blast2cap3_serial([], [])
        assert result.output_count == 0
        assert result.reduction_fraction == 0.0


class TestMergeCluster:
    def test_unknown_transcript_raises(self, workload):
        cluster = ProteinCluster("pX", ("missing_a", "missing_b"))
        with pytest.raises(KeyError, match="unknown"):
            merge_cluster(cluster, {t.id: t for t in workload.transcripts})

    def test_fragments_of_one_gene_merge(self, workload):
        # Pick a protein with >= 2 fragments from ground truth.
        sizes = workload.transcriptome.cluster_sizes
        protein_id = next(p for p, n in sizes.items() if n >= 2)
        members = tuple(
            tid
            for tid, origin in workload.transcriptome.origin.items()
            if origin == protein_id
        )
        cluster = ProteinCluster(protein_id, members)
        by_id = {t.id: t for t in workload.transcripts}
        contigs, singlets, merged = merge_cluster(cluster, by_id)
        assert len(contigs) + len(singlets) <= len(members)
        if contigs:
            assert merged
            assert all(c.id.startswith(f"{protein_id}.Contig") for c in contigs)
