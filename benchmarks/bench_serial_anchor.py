"""§V-B anchor — the 100-hour serial run, and the model's calibration.

Checks that every quantity the performance model is *fitted* to stays
within tolerance of the paper's text, so drift in the model shows up
here before it silently distorts the figure benches.
"""

from conftest import write_result

from repro.perfmodel.calibration import anchors
from repro.perfmodel.task_models import PaperTaskModel
from repro.util.tables import Table
from repro.util.units import format_duration


def test_calibration_anchors(paper_model, benchmark):
    a = anchors()
    serial = paper_model.serial_walltime()
    n10_max = max(paper_model.partition_runtimes(10))
    plateau_max = {
        n: max(paper_model.partition_runtimes(n)) for n in (100, 300, 500)
    }

    table = Table(
        ["anchor", "paper", "model", "error"],
        title="Calibration anchors (paper text vs fitted model)",
    )
    table.add_row(
        "serial wall time",
        f"{a.serial_walltime_s:.0f} s (100 h)",
        f"{serial:.0f} s ({format_duration(serial)})",
        f"{100 * abs(serial - a.serial_walltime_s) / a.serial_walltime_s:.1f}%",
    )
    table.add_row(
        "largest run_cap3 task at n=10",
        f"~{a.sandhills_n10_s:.0f} s",
        f"{n10_max:.0f} s",
        f"{100 * abs(n10_max - a.sandhills_n10_s) / a.sandhills_n10_s:.1f}%",
    )
    for n, value in plateau_max.items():
        table.add_row(
            f"largest run_cap3 task at n={n}",
            f"~{a.sandhills_plateau_s:.0f} s",
            f"{value:.0f} s",
            f"{100 * abs(value - a.sandhills_plateau_s) / a.sandhills_plateau_s:.1f}%",
        )
    write_result("serial_anchor", table.render())

    assert abs(serial - a.serial_walltime_s) / a.serial_walltime_s < 0.05
    assert abs(n10_max - a.sandhills_n10_s) / a.sandhills_n10_s < 0.20
    for value in plateau_max.values():
        assert 0.6 * a.sandhills_plateau_s < value < 1.4 * a.sandhills_plateau_s

    # benchmark: the model's hot path (cost generation + partitioning).
    def regenerate():
        model = PaperTaskModel(seed=9)  # different seed defeats the cache
        model.partition_runtimes(500)

    benchmark(regenerate)
