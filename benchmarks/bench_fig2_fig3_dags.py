"""Figs. 2 & 3 — the workflow DAG structures, regenerated.

Verifies the DAGs have exactly the paper's structure (tasks, file
nodes, dependencies; the OSG variant's setup decoration) and emits
``fig2_sandhills.dot`` / ``fig3_osg.dot`` artifacts.
"""

from conftest import RESULTS_DIR

from repro.core.workflow_factory import (
    build_blast2cap3_adag,
    default_catalogs,
    workflow_figure,
)
from repro.perfmodel.task_models import PaperTaskModel
from repro.wms.planner import PlannerOptions, plan


def test_fig2_fig3_dag_structure(benchmark):
    n = 10
    model = PaperTaskModel()
    adag = build_blast2cap3_adag(n, model=model)

    # -- Fig. 2 structure ---------------------------------------------
    assert len(adag) == 6 + n
    edges = adag.edges()
    for i in range(1, n + 1):
        assert ("split", f"run_cap3_{i}") in edges
        assert ("create_transcript_list", f"run_cap3_{i}") in edges
        assert (f"run_cap3_{i}", "merge_joined") in edges
        assert (f"run_cap3_{i}", "merge_unjoined") in edges
    assert ("merge_joined", "concat_final") in edges
    assert ("merge_unjoined", "concat_final") in edges
    assert {f.name for f in adag.external_inputs()} == {
        "transcripts.fasta", "alignments.out",
    }

    # -- planning both sites: Fig. 3 = Fig. 2 + setup decoration -------
    sites, tc, rc = default_catalogs()
    campus = plan(adag, site_name="sandhills", sites=sites,
                  transformations=tc, replicas=rc,
                  options=PlannerOptions(retries=3))
    grid = plan(adag, site_name="osg", sites=sites,
                transformations=tc, replicas=rc,
                options=PlannerOptions(retries=3))
    assert set(campus.dag.jobs) == set(grid.dag.jobs)
    assert set(campus.dag.edges()) == set(grid.dag.edges())
    campus_setup = {m for m, j in campus.dag.jobs.items() if j.needs_setup}
    grid_setup = {m for m, j in grid.dag.jobs.items() if j.needs_setup}
    assert campus_setup == set()
    assert grid_setup == set(grid.job_map.values())  # every compute task

    # -- DOT artifacts ---------------------------------------------------
    RESULTS_DIR.mkdir(exist_ok=True)
    fig2 = workflow_figure(adag)
    fig3 = workflow_figure(adag, osg=True)
    fig2.write(RESULTS_DIR / "fig2_sandhills.dot")
    fig3.write(RESULTS_DIR / "fig3_osg.dot")
    assert fig2.node_count == fig3.node_count
    assert "color=red" in fig3.render()
    assert "color=red" not in fig2.render()

    # benchmark: DAX build + plan at the paper's largest n.
    def build_and_plan():
        big = build_blast2cap3_adag(500, model=model)
        plan(big, site_name="osg", sites=sites, transformations=tc,
             replicas=rc, options=PlannerOptions(retries=3))

    benchmark(build_and_plan)
