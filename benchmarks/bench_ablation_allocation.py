"""Ablation — how big does the campus-cluster share need to be?

§IV-A: "campus clusters are not instantly available, and thus there is
a long waiting time to access nodes" — yet the paper's runs saw
negligible waiting, implying their group's allocation comfortably held
the workflow. This ablation shrinks ``group_slots`` and watches the
slot starvation appear: wall time and per-task waiting grow as the
share shrinks, until the allocation (not the biggest cluster) becomes
the bottleneck.
"""

import statistics

from conftest import write_result

from repro.core.workflow_factory import simulate_paper_run
from repro.sim.cluster import CampusClusterConfig
from repro.util.tables import Table
from repro.wms.statistics import per_transformation

SLOTS = (25, 100, 500)
SEEDS = (0, 1, 2)
N = 300


def _run(paper_model, slots: int):
    walls, waits = [], []
    for seed in SEEDS:
        result, _ = simulate_paper_run(
            N, "sandhills", seed=seed, model=paper_model,
            cluster_config=CampusClusterConfig(group_slots=slots),
        )
        assert result.success
        walls.append(result.trace.wall_time())
        cap3 = next(
            t for t in per_transformation(result.trace)
            if t.transformation == "run_cap3"
        )
        waits.append(cap3.mean_waiting)
    return statistics.median(walls), statistics.median(waits)


def test_group_allocation_ablation(paper_model, benchmark):
    results = {slots: _run(paper_model, slots) for slots in SLOTS}

    table = Table(
        ["group slots", "wall time (s)", "mean run_cap3 waiting (s)"],
        title=f"Ablation — Sandhills group allocation at n={N} "
              "(median of 3 seeds)",
    )
    for slots in SLOTS:
        wall, wait = results[slots]
        table.add_row(slots, round(wall), round(wait))
    write_result("ablation_allocation", table.render())

    # Starvation: smaller shares mean longer waits and longer runs.
    assert results[25][0] > results[100][0] >= results[500][0] * 0.95
    assert results[25][1] > 10 * results[500][1]

    # With a generous share, waiting is "small and negligible" (§VI-B)…
    assert results[500][1] < 120
    # …and the wall time is floored by the largest cluster, not slots.
    floor = paper_model.max_cluster_cost()
    assert results[500][0] < 1.6 * floor

    # With 25 slots, aggregate throughput bounds the run instead:
    # 354,000s of work over 25 slots ≈ 14,160s of pure compute.
    assert results[25][0] > paper_model.cap3_total_s / 25

    benchmark(
        lambda: simulate_paper_run(
            N, "sandhills", seed=0, model=paper_model,
            cluster_config=CampusClusterConfig(group_slots=25),
        )
    )
