"""§II claims about assembly quality — verified with *real* execution.

"The recent use of blast2cap3 on the wheat transcriptome assembly shows
that blast2cap3 generates fewer artificially fused sequences compared
to assembling the entire dataset with CAP3. Moreover, it also reduces
the total number of transcripts by 8-9%."

We run both strategies on a synthetic transcriptome whose ground truth
we know (which gene each transcript came from), so "artificially fused"
is directly measurable: a contig whose members span more than one gene.
The synthetic data includes *paralog* gene pairs (sequence-similar
genes) — the trap that makes whole-dataset CAP3 fuse transcripts.
"""

import random

import pytest

from conftest import write_result

from repro.bio.fasta import FastaRecord
from repro.cap3.assembler import assemble
from repro.core.blast2cap3 import blast2cap3_serial
from repro.datagen.transcripts import TranscriptomeSpec, generate_transcriptome
from repro.datagen.workload import _oracle_hits
from repro.datagen.proteins import random_protein_db
from repro.util.tables import Table


def paralog_workload(seed=17):
    """Gene families with high nucleotide similarity between members."""
    rng = random.Random(seed)
    base = random_protein_db(6, seed=seed, min_length=160, max_length=220)
    proteins = []
    for record in base:
        proteins.append(record)
        # A paralog: ~8% of residues substituted.
        residues = list(record.seq)
        for pos in rng.sample(range(len(residues)), max(1, len(residues) // 12)):
            residues[pos] = rng.choice("ACDEFGHIKLMNPQRSTVWY")
        proteins.append(
            FastaRecord(id=f"{record.id}p", seq="".join(residues))
        )
    spec = TranscriptomeSpec(
        mean_fragments_per_gene=3.0,
        sigma_fragments=0.4,
        error_rate=0.002,
        noise_transcripts=4,
    )
    transcriptome = generate_transcriptome(proteins, spec, seed=seed + 1)
    hits = _oracle_hits(transcriptome, proteins, seed=seed)
    return proteins, transcriptome, hits


def fused_count(contig_members, origin):
    """Contigs whose members span more than one gene."""
    fused = 0
    for members in contig_members:
        genes = {origin.get(m) for m in members if m in origin}
        if len(genes) > 1:
            fused += 1
    return fused


@pytest.fixture(scope="module")
def comparison():
    proteins, transcriptome, hits = paralog_workload()
    origin = transcriptome.origin
    transcripts = transcriptome.transcripts

    whole = assemble(transcripts)  # the entire dataset through CAP3
    guided = blast2cap3_serial(transcripts, hits)

    whole_fused = fused_count((c.members for c in whole.contigs), origin)
    guided_members = []
    # blast2cap3 contigs: reconstruct membership by rerunning clustering
    # is unnecessary — members are the merged ids per contig's cluster;
    # approximate at cluster granularity: a guided contig can only fuse
    # transcripts within one protein cluster.
    guided_fused = 0
    for contig in guided.joined:
        protein_id = contig.id.split(".Contig")[0]
        # all members share the protein cluster; fusion across genes can
        # still occur if different genes' transcripts hit one protein.
        cluster_members = [
            t for t, p in origin.items() if p == protein_id
        ]
        genes = {origin[m] for m in cluster_members}
        if len(genes) > 1:
            guided_fused += 1

    return {
        "input": len(transcripts),
        "whole_out": whole.sequence_count(),
        "guided_out": guided.output_count,
        "whole_fused": whole_fused,
        "guided_fused": guided_fused,
        "guided_reduction": guided.reduction_fraction,
    }


def test_blast2cap3_reduces_transcripts(comparison, benchmark):
    table = Table(
        ["strategy", "output sequences", "fused contigs"],
        title="Whole-dataset CAP3 vs protein-guided blast2cap3 (real runs)",
    )
    table.add_row(f"input ({comparison['input']} transcripts)", "-", "-")
    table.add_row("CAP3 on entire dataset", comparison["whole_out"],
                  comparison["whole_fused"])
    table.add_row("blast2cap3 (protein-guided)", comparison["guided_out"],
                  comparison["guided_fused"])
    write_result("quality_reduction", table.render())

    # The §II 8-9% claim is about wheat; our synthetic redundancy is
    # heavier, so assert a healthy reduction (>= 8%).
    assert comparison["guided_reduction"] >= 0.08
    assert comparison["guided_out"] < comparison["input"]

    proteins, transcriptome, hits = paralog_workload()
    benchmark(
        lambda: blast2cap3_serial(transcriptome.transcripts, hits)
    )


def test_fewer_fused_sequences_than_whole_dataset_cap3(comparison):
    # Paralogs trick whole-dataset CAP3 into cross-gene merges; the
    # protein-guided clustering prevents (or at least never increases)
    # them.
    assert comparison["guided_fused"] <= comparison["whole_fused"]
