"""§VI-A claim — the Pegasus implementation cuts serial time by >95 %.

"If the current sequential implementation of blast2cap3 for the given
input files runs for 100 hours, the Pegasus WMS implementation runs for
3 hours in average."
"""

import statistics

from conftest import NS, write_result

from repro.core.workflow_factory import run_local, simulate_paper_run
from repro.perfmodel.calibration import anchors
from repro.util.tables import Table


def test_workflow_reduction_exceeds_95_percent(fig4_data, paper_model,
                                               benchmark):
    a = anchors()
    serial = paper_model.serial_walltime()

    rows = []
    for platform in ("sandhills", "osg"):
        for n in NS:
            wall = fig4_data[(platform, n)]
            rows.append((platform, n, wall, 1 - wall / serial))

    table = Table(
        ["platform", "n", "wall (s)", "reduction"],
        title="Reduction vs 100-hour serial run",
    )
    for platform, n, wall, red in rows:
        table.add_row(platform, n, round(wall), f"{100 * red:.1f}%")
    write_result("serial_speedup", table.render())

    # ">95%" holds at the paper's practical operating points (n >= 100).
    practical = [red for _, n, _, red in rows if n >= 100]
    assert all(red > a.min_reduction_vs_serial for red in practical)

    # "runs for 3 hours in average" at the plateau.
    plateau = [w for p, n, w, _ in rows if n >= 100]
    mean_wall = statistics.mean(plateau)
    assert 0.6 * a.workflow_mean_s < mean_wall < 1.6 * a.workflow_mean_s

    benchmark(lambda: simulate_paper_run(100, "osg", seed=2,
                                         model=paper_model))


def test_real_local_execution_also_speeds_up(tmp_path_factory, benchmark):
    """Same claim at laptop scale with *real* computation: the workflow
    on the process-pool backend beats the serial loop on actual CAP3
    work. The workload uses *even* cluster sizes — with the generator's
    default skew, one giant cluster bounds the wall time exactly as the
    paper's plateau does, and no scheduler could beat that."""
    import time

    from repro.bio.fasta import write_fasta
    from repro.blast.tabular import write_tabular
    from repro.core.blast2cap3 import blast2cap3_serial
    from repro.datagen.transcripts import TranscriptomeSpec
    from repro.datagen.workload import generate_blast2cap3_workload

    tmp = tmp_path_factory.mktemp("speedup")
    wl = generate_blast2cap3_workload(
        n_proteins=16,
        spec=TranscriptomeSpec(
            mean_fragments_per_gene=5.0,
            sigma_fragments=0.05,  # even clusters: parallelisable work
            error_rate=0.002,
        ),
        seed=5,
    )
    transcripts = tmp / "transcripts.fasta"
    alignments = tmp / "alignments.out"
    write_fasta(transcripts, wl.transcripts)
    write_tabular(alignments, wl.hits)

    t0 = time.perf_counter()
    blast2cap3_serial(wl.transcripts, wl.hits)
    serial_s = time.perf_counter() - t0

    last_result = {}

    def workflow_run(workers: int):
        import shutil
        import tempfile

        workdir = tempfile.mkdtemp(dir=tmp, prefix="wf")
        result = run_local(transcripts, alignments, workdir, n=8,
                           max_workers=workers, executor="process")
        assert result.dagman.success
        last_result["trace"] = result.dagman.trace
        shutil.rmtree(workdir, ignore_errors=True)

    import os

    workers = max(2, min(8, os.cpu_count() or 2))
    benchmark.pedantic(workflow_run, args=(workers,), rounds=3, iterations=1)

    # Parallelism must actually have happened: at least two run_cap3
    # payloads overlapped in time. (Wall-clock speedup ratios are too
    # noisy to assert on a shared 2-core CI box; the cumulative-work vs
    # wall-time comparison below is the robust version of the claim.)
    cap3 = sorted(
        (a for a in last_result["trace"].successful()
         if a.transformation == "run_cap3"),
        key=lambda a: a.exec_start,
    )
    assert any(
        cap3[i + 1].exec_start < cap3[i].exec_end
        for i in range(len(cap3) - 1)
    ), "no run_cap3 payloads overlapped: the pool did not parallelise"
    wall = last_result["trace"].wall_time()
    work = last_result["trace"].cumulative_kickstart()
    assert work > 1.1 * wall, "cumulative payload time should exceed wall time"
    # And the workflow must not be pathologically slower than the plain
    # serial loop (it was 7x slower under the old thread pool).
    assert benchmark.stats["mean"] < 1.6 * serial_s
