"""Chaos sweep: paper-scale OSG runs under rising injected failure.

Runs the Fig. 4-scale blast2cap3 workflow (n=300) on the OSG model
through :func:`simulate_paper_run_with_recovery` while a
:class:`~repro.resilience.faults.FaultPlan` layers extra start
failures on top of the grid's calibrated failure regime, sweeping the
injected dead-on-arrival probability over several seeds.

The assertions are the acceptance criteria for the resilience layer:

* every run **completes** — the retry policy plus the rescue-resubmit
  loop absorb the chaos within ``MAX_ROUNDS`` rounds, and
  ``pegasus-statistics`` accounting stays consistent (all planned jobs
  succeed, none unattempted);
* median makespan is **monotone non-decreasing** in the failure rate
  (modulo ``SLACK`` — requeues can shuffle the matchmaking order, so a
  tiny inversion is noise, a large one is a model bug);
* injected faults are **visible**: ``fault.injected`` events appear on
  the bus iff the plan has a firing probability.

Artifacts under ``benchmarks/results/`` (CI uploads these):

* ``chaos_sweep.tsv`` — one row per (probability, seed) run;
* ``chaos_sweep.txt`` — rendered sweep table + per-rate summary.
"""

import statistics

from conftest import RESULTS_DIR, write_result

from repro.core.workflow_factory import simulate_paper_run_with_recovery
from repro.observe import EventBus, EventKind, EventRecorder
from repro.resilience import FaultPlan, ImmediateRetry, StartFailure
from repro.wms.statistics import summarize

N = 300
SEEDS = (0, 1, 2)
#: Injected dead-on-arrival probabilities, layered on the OSG regime.
START_FAILURE_PROBS = (0.0, 0.1, 0.3)
MAX_ROUNDS = 3
#: Requeue shuffling makes makespan slightly noisy between adjacent
#: failure rates; allow 2% before calling an inversion a regression.
SLACK = 0.98


def _chaos_run(prob, seed, model):
    """One recovered OSG run with ``prob`` injected start failures."""
    bus = EventBus()
    recorder = EventRecorder(bus)
    plan = FaultPlan((StartFailure(prob),)) if prob else None
    outcome, planned = simulate_paper_run_with_recovery(
        N,
        "osg",
        seed=seed,
        model=model,
        fault_plan=plan,
        # Evictions are the grid's fault, not the job's: requeue free,
        # like DAGMan resubmitting preempted glidein jobs.
        retry_policy=ImmediateRetry(charge_evictions=False),
        max_rounds=MAX_ROUNDS,
        bus=bus,
    )
    return outcome, planned, recorder.events


def test_chaos_sweep_makespan_monotone(paper_model, benchmark):
    RESULTS_DIR.mkdir(exist_ok=True)
    rows = []
    medians = {}
    for prob in START_FAILURE_PROBS:
        walls = []
        for seed in SEEDS:
            outcome, planned, events = _chaos_run(prob, seed, paper_model)

            # -- recovery completes ----------------------------------
            assert outcome.success, (
                f"p={prob} seed={seed}: not recovered in {MAX_ROUNDS} rounds"
            )
            assert len(outcome.rounds) <= MAX_ROUNDS

            # -- accounting stays consistent across rounds -----------
            stats = summarize(outcome.trace, dag=planned.dag)
            assert stats.total_jobs == len(planned.dag.jobs)
            assert stats.succeeded_jobs == stats.total_jobs
            assert stats.unattempted_jobs == 0

            # -- injected faults are visible on the bus --------------
            faults = [e for e in events if e.kind is EventKind.FAULT]
            if prob:
                assert faults, f"p={prob} seed={seed}: no fault.injected"
            else:
                assert not faults

            wall = outcome.trace.wall_time()
            walls.append(wall)
            rows.append(
                (
                    prob,
                    seed,
                    wall,
                    len(outcome.trace),
                    outcome.trace.retry_count,
                    len(faults),
                    len(outcome.rounds),
                )
            )
        medians[prob] = statistics.median(walls)

    # -- chaos is never free: median makespan rises with the rate ----
    for lo, hi in zip(START_FAILURE_PROBS, START_FAILURE_PROBS[1:]):
        assert medians[hi] >= medians[lo] * SLACK, (
            f"makespan fell as failures rose: "
            f"p={lo}: {medians[lo]:,.0f}s -> p={hi}: {medians[hi]:,.0f}s"
        )

    (RESULTS_DIR / "chaos_sweep.tsv").write_text(
        "start_failure_prob\tseed\twall_s\tattempts\tretries"
        "\tfault_events\trounds\n"
        + "".join(
            f"{p}\t{s}\t{w:.0f}\t{a}\t{r}\t{f}\t{k}\n"
            for p, s, w, a, r, f, k in rows
        )
    )
    lines = [
        f"Chaos sweep — blast2cap3 n={N} on OSG, seeds {SEEDS}, "
        f"injected start-failure prob swept over {START_FAILURE_PROBS}",
        "",
        f"{'prob':>6}  {'median wall':>12}  {'vs clean':>8}",
    ]
    clean = medians[START_FAILURE_PROBS[0]]
    for prob in START_FAILURE_PROBS:
        lines.append(
            f"{prob:>6}  {medians[prob]:>11,.0f}s  "
            f"{medians[prob] / clean:>7.2f}x"
        )
    lines += [
        "",
        "All runs recovered within "
        f"{MAX_ROUNDS} rounds; statistics consistent "
        "(every planned job succeeded, none unattempted).",
    ]
    write_result("chaos_sweep", "\n".join(lines))

    # benchmark: the heaviest point of the sweep — recovery under 30%
    # injected start failures should stay in the same cost regime as a
    # clean instrumented run.
    benchmark(lambda: _chaos_run(START_FAILURE_PROBS[-1], SEEDS[0], paper_model))
