"""Engineering microbenchmarks of the substrates.

Not a paper figure — these keep the building blocks honest: alignment
kernel throughput, BLASTX query latency, CAP3 assembly, the
discrete-event engine's event rate, and DAGMan scheduling overhead.
"""

import random

import pytest

from repro.bio.alignment import local_align, overlap_align
from repro.bio.fasta import FastaRecord
from repro.bio.matrices import dna_matrix
from repro.blast.blastx import blastx
from repro.blast.database import ProteinDatabase
from repro.cap3.assembler import assemble
from repro.dagman.dag import Dag, DagJob
from repro.dagman.scheduler import DagmanScheduler
from repro.sim.cluster import CampusCluster
from repro.sim.engine import Simulator
from repro.sim.rng import RngStreams


def random_dna(rng, n):
    return "".join(rng.choice("ACGT") for _ in range(n))


def test_bench_local_alignment_500bp(benchmark):
    rng = random.Random(1)
    a, b = random_dna(rng, 500), random_dna(rng, 500)
    result = benchmark(lambda: local_align(a, b, matrix=dna_matrix(), gap=-4))


def test_bench_overlap_alignment_500bp(benchmark):
    rng = random.Random(2)
    genome = random_dna(rng, 800)
    a, b = genome[:500], genome[300:]
    res = benchmark(lambda: overlap_align(a, b))
    assert res.identity > 0.9


def test_bench_blastx_query(benchmark):
    from repro.datagen.proteins import random_protein_db
    from repro.datagen.transcripts import generate_transcriptome

    proteins = random_protein_db(10, seed=3)
    transcriptome = generate_transcriptome(proteins, seed=4)
    db = ProteinDatabase(records=proteins)
    query = transcriptome.transcripts[0]
    hits = benchmark(lambda: blastx(query, db))
    assert hits


def test_bench_cap3_twenty_reads(benchmark):
    rng = random.Random(5)
    genome = random_dna(rng, 1500)
    reads = [
        FastaRecord(id=f"r{i}", seq=genome[s : s + 300])
        for i, s in enumerate(range(0, 1201, 60))
    ]
    result = benchmark(lambda: assemble(reads))
    assert result.contigs


def test_bench_sim_engine_100k_events(benchmark):
    def run():
        sim = Simulator()
        count = [0]

        def tick():
            count[0] += 1
            if count[0] < 100_000:
                sim.schedule(1.0, tick)

        sim.schedule(1.0, tick)
        sim.run()
        return count[0]

    assert benchmark(run) == 100_000


def test_bench_dagman_1000_job_bag(benchmark):
    def run():
        dag = Dag()
        for i in range(1000):
            dag.add_job(DagJob(name=f"j{i}", transformation="t", runtime=100))
        sim = Simulator()
        env = CampusCluster(sim, streams=RngStreams(seed=0))
        result = DagmanScheduler(dag, env).run()
        assert result.success
        return result

    benchmark(run)


def test_bench_paper_scale_osg_simulation(benchmark):
    from repro.core.workflow_factory import simulate_paper_run

    def run():
        result, _ = simulate_paper_run(500, "osg", seed=0)
        assert result.success

    benchmark.pedantic(run, rounds=3, iterations=1)
