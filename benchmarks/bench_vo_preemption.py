"""Mechanism cross-check — VO competition reproduces the eviction rate.

The OSG platform model (repro.sim.grid) *assumes* preemption as an
exponential hazard (default 1/20,000 per job-second). The schedd +
negotiator module (repro.dagman.schedd) *derives* preemption from the
underlying mechanics: opportunistic jobs run on other VOs' machines and
get evicted whenever the owning VO (better fair-share priority) wants
its slots back.

This bench runs an opportunistic user's workload against a bursty
resource-owner VO and measures the realised hazard — it should land in
the same order of magnitude as the grid model's assumption, tying the
abstraction to its mechanism.
"""

from conftest import write_result

from repro.dagman.condor import ClassAd
from repro.dagman.schedd import CondorPool, JobState
from repro.sim.engine import Simulator
from repro.sim.grid import GridConfig
from repro.util.tables import Table


def run_competition(
    *, machines=60, user_jobs=240, user_runtime=2_000.0,
    owner_burst=25, owner_runtime=1_500.0, burst_interval=2_500.0,
    bursts=6, burst_start=1_500.0,
):
    sim = Simulator()
    pool = CondorPool(
        sim,
        [ClassAd(name=f"slot{i}") for i in range(machines)],
        negotiation_interval_s=60.0,
        preemption=True,
        half_life_s=86_400.0,
    )
    # The opportunistic user has accumulated usage (they have been
    # borrowing cycles); the owner VO's slate is clean — Condor's
    # fair-share then always sides with the owner.
    pool._charge("osg-user", 500_000.0)

    for _ in range(user_jobs):
        pool.schedd.submit(owner="osg-user", runtime=user_runtime)

    def submit_burst():
        for _ in range(owner_burst):
            pool.schedd.submit(owner="owner-vo", runtime=owner_runtime)

    for b in range(bursts):
        sim.schedule(burst_start + b * burst_interval, submit_burst)

    sim.run(max_events=2_000_000)

    user_jobs_list = [
        j for j in pool.schedd.jobs.values() if j.owner == "osg-user"
    ]
    completed = [j for j in user_jobs_list if j.state is JobState.COMPLETED]
    evictions = sum(j.preemptions for j in user_jobs_list)
    # Exposure: every completed run's final runtime plus the lost
    # partial runs (approximate lost time as half a runtime each).
    exposure = (
        sum(user_runtime for _ in completed) + evictions * user_runtime / 2
    )
    hazard = evictions / exposure if exposure else 0.0
    return pool, completed, evictions, hazard


def test_vo_competition_matches_grid_hazard(benchmark):
    pool, completed, evictions, hazard = run_competition()
    assumed = GridConfig().failures.eviction_rate_per_s

    table = Table(
        ["quantity", "value"],
        title="VO competition vs the grid model's eviction hazard",
    )
    table.add_row("user jobs completed", len(completed))
    table.add_row("preemptions observed", evictions)
    table.add_row("realised hazard (1/s)", f"{hazard:.2e}")
    table.add_row("grid model assumption (1/s)", f"{assumed:.2e}")
    table.add_row("negotiation cycles", pool.negotiation_cycles)
    write_result("vo_preemption", table.render())

    # The user's work eventually completes (DAGMan-like persistence is
    # the negotiator requeueing evicted jobs).
    assert len(completed) == 240
    # Preemption actually happened.
    assert evictions > 10
    # Mechanism and abstraction agree within an order of magnitude.
    assert assumed / 10 < hazard < assumed * 10

    benchmark.pedantic(run_competition, rounds=2, iterations=1)
