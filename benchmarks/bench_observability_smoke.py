"""Observability smoke: one Fig. 4-scale run, fully instrumented.

Runs the paper-scale blast2cap3 workflow (n=300) on both platforms with
the :mod:`repro.observe` layer attached — event bus, metrics registry,
utilization sampler — and writes every exporter's artifact under
``benchmarks/results/`` (CI uploads these):

* ``observability_<platform>_events.jsonl``  — live event log;
* ``observability_<platform>_trace.chrome.json`` — Perfetto-loadable;
* ``observability_<platform>_utilization.tsv`` — sampled time series;
* ``observability_smoke.txt`` — consistency report.

The assertions are the acceptance criteria for the observe layer: the
bus-derived trace must equal the scheduler's own trace, the statistics
computed from the event stream must match ``pegasus-statistics`` over
the classic trace, and the live status view must agree with both.
"""

import json

from conftest import RESULTS_DIR, update_bench_report, write_result

from repro.core.workflow_factory import simulate_paper_run
from repro.observe import (
    EventBus,
    EventKind,
    EventRecorder,
    StatusView,
    UtilizationSample,
    events_to_trace,
    instrument,
    read_events,
    write_chrome_trace,
    write_events,
)
from repro.observe.report import build_report
from repro.wms.monitor import read_trace
from repro.wms.statistics import render_report, summarize, summarize_events

N = 300
SEED = 0
SAMPLE_INTERVAL_S = 300.0


def _observed_run(platform, model):
    bus = EventBus()
    recorder = EventRecorder(bus)
    metrics = instrument(bus)
    view = StatusView()
    bus.subscribe(view.update)
    result, planned = simulate_paper_run(
        N, platform, seed=SEED, model=model,
        bus=bus, sample_interval_s=SAMPLE_INTERVAL_S,
    )
    return result, planned, recorder, metrics, view


def test_observability_smoke(paper_model, benchmark):
    RESULTS_DIR.mkdir(exist_ok=True)
    report_lines = [
        f"Observability smoke — n={N}, seed={SEED}, "
        f"sampling every {SAMPLE_INTERVAL_S:.0f}s",
        "",
    ]
    bench_sections: dict[str, dict] = {}
    for platform in ("sandhills", "osg"):
        result, planned, recorder, metrics, view = _observed_run(
            platform, paper_model
        )
        assert result.success, f"{platform} run failed"
        events = recorder.events

        # -- the bus is a faithful second witness of the run --------------
        bus_trace = events_to_trace(events)
        assert sorted(
            bus_trace, key=lambda a: (a.job_name, a.attempt)
        ) == sorted(
            result.trace, key=lambda a: (a.job_name, a.attempt)
        ), "bus-derived trace != scheduler trace"

        # -- statistics from events == pegasus-statistics over the trace --
        stats_events = summarize_events(events, dag=planned.dag)
        stats_trace = summarize(result.trace, dag=planned.dag)
        assert stats_events == stats_trace
        assert stats_events.total_jobs == len(planned.dag.jobs)
        assert stats_events.unattempted_jobs == 0

        # -- the live view converged to the same numbers ------------------
        assert view.workflow_done is True
        assert len(view.done) == stats_trace.succeeded_jobs
        assert view.retries == result.trace.retry_count

        # -- sampler produced a plausible utilization series --------------
        samples = [e for e in events if e.kind is EventKind.SAMPLE]
        assert samples, "no utilization samples on the bus"
        peak_sampled = max(e.detail["busy"] for e in samples)
        assert 0 < peak_sampled <= len(planned.dag.jobs)

        # -- metrics registry agrees with the trace -----------------------
        snap = metrics.snapshot()
        finishes = snap["counters"].get("events_total{kind=job.finish}", 0)
        evictions = snap["counters"].get("events_total{kind=job.evict}", 0)
        assert finishes + evictions == len(result.trace)

        # -- exporters: JSONL round-trips, Chrome trace is well-formed ----
        events_path = RESULTS_DIR / f"observability_{platform}_events.jsonl"
        write_events(events_path, events)
        assert events_to_trace(read_events(events_path)) == bus_trace
        # ...and the classic reader sees exactly the attempts.
        assert sorted(
            read_trace(events_path), key=lambda a: (a.job_name, a.attempt)
        ) == sorted(result.trace, key=lambda a: (a.job_name, a.attempt))

        chrome_path = (
            RESULTS_DIR / f"observability_{platform}_trace.chrome.json"
        )
        write_chrome_trace(
            chrome_path, result.trace,
            samples=[
                UtilizationSample(e.time, e.detail["busy"], e.detail["idle"])
                for e in samples
            ],
            workflow=f"blast2cap3-n{N}-{platform}",
        )
        loaded = json.loads(chrome_path.read_text())
        complete = [e for e in loaded["traceEvents"] if e["ph"] == "X"]
        counters = [e for e in loaded["traceEvents"] if e["ph"] == "C"]
        assert counters and complete
        assert all(e["dur"] >= 0 and e["ts"] >= 0 for e in complete)
        exec_events = [e for e in complete if e["cat"] == "exec"]
        assert len(exec_events) == len(result.trace)

        util_path = RESULTS_DIR / f"observability_{platform}_utilization.tsv"
        util_path.write_text(
            "time_s\tbusy\tidle\n"
            + "".join(
                f"{e.time:.0f}\t{e.detail['busy']}\t{e.detail['idle']}\n"
                for e in samples
            )
        )

        # -- makespan attribution: the buckets must tile the makespan --
        attribution = build_report(
            result.trace, dag=planned.dag,
            label=f"smoke-{platform}-n{N}-seed{SEED}",
        )
        assert (
            abs(
                sum(attribution["attribution"].values())
                - attribution["makespan_s"]
            )
            < 1e-6
        ), "attribution buckets do not sum to the makespan"
        report_path = RESULTS_DIR / f"observability_{platform}_report.json"
        report_path.write_text(json.dumps(attribution, indent=2) + "\n")
        bench_sections[platform] = {
            "makespan_s": attribution["makespan_s"],
            "attribution": attribution["attribution"],
            "counts": attribution["counts"],
            "kickstart": attribution["kickstart"],
        }

        report_lines += [
            f"[{platform}] wall={result.trace.wall_time():,.0f}s "
            f"attempts={len(result.trace)} retries={result.trace.retry_count}",
            f"[{platform}] events={len(events)} samples={len(samples)} "
            f"peak_busy_sampled={peak_sampled}",
            f"[{platform}] bus-trace == scheduler-trace: OK; "
            "summarize_events == summarize: OK",
            "",
        ]
        # Keep a statistics report next to the artifacts for eyeballing.
        report_lines.append(
            render_report(stats_trace, title=f"{platform} n={N} (observed)")
        )
        report_lines.append("")

    write_result("observability_smoke", "\n".join(report_lines))
    update_bench_report(
        "observability_smoke",
        {"n": N, "seed": SEED, "platforms": bench_sections},
    )

    # benchmark: the instrumented run should not be meaningfully slower
    # than the bare one benchmarked in bench_fig4_walltime.
    benchmark(lambda: _observed_run("sandhills", paper_model))
