"""Observability smoke: one Fig. 4-scale run, fully instrumented.

Runs the paper-scale blast2cap3 workflow (n=300) on both platforms with
the :mod:`repro.observe` layer attached — event bus, metrics registry,
utilization sampler — and writes every exporter's artifact under
``benchmarks/results/`` (CI uploads these):

* ``observability_<platform>_events.jsonl``  — live event log;
* ``observability_<platform>_trace.chrome.json`` — Perfetto-loadable;
* ``observability_<platform>_trace.otlp.json`` — OTLP-JSON causal spans;
* ``observability_<platform>_trace.perfetto.json`` — TracePackets;
* ``observability_<platform>_utilization.tsv`` — sampled time series;
* ``observability_smoke.txt`` — consistency report.

The assertions are the acceptance criteria for the observe layer: the
bus-derived trace must equal the scheduler's own trace, the statistics
computed from the event stream must match ``pegasus-statistics`` over
the classic trace, the live status view must agree with both, the
span-derived critical path must agree with the attribution buckets,
and — the zero-overhead guard — a run with nothing subscribed must
construct zero events and zero spans. The measured span-tracing
overhead lands in the per-platform report as
``tracing.overhead_pct``, which CI gates at 10 % via ``repro-report
compare --fail-on tracing_overhead_pct=10``.
"""

import json
import time

from conftest import RESULTS_DIR, update_bench_report, write_result

from repro.core.workflow_factory import simulate_paper_run
from repro.observe import (
    AnomalyMonitor,
    EventBus,
    EventKind,
    EventLogWriter,
    EventRecorder,
    SpanTracer,
    StatusView,
    UtilizationSample,
    derive_trace_id,
    events_to_trace,
    instrument,
    read_events,
    spans_created,
    write_chrome_trace,
    write_events,
    write_otlp_trace,
    write_perfetto_trace,
)
from repro.observe.report import build_report
from repro.wms.monitor import read_trace
from repro.wms.statistics import render_report, summarize, summarize_events

N = 300
SEED = 0
SAMPLE_INTERVAL_S = 300.0
#: CI gate (repro-report compare --fail-on tracing_overhead_pct=10).
OVERHEAD_GATE_PCT = 10.0
OVERHEAD_REPEATS = 3


def _observed_run(platform, model):
    bus = EventBus()
    recorder = EventRecorder(bus)
    metrics = instrument(bus)
    view = StatusView()
    bus.subscribe(view.update)
    tracer = SpanTracer(
        trace_id=derive_trace_id(f"smoke-{platform}-n{N}-seed{SEED}"),
        bus=bus,
    )
    monitor = AnomalyMonitor(bus)
    result, planned = simulate_paper_run(
        N, platform, seed=SEED, model=model,
        bus=bus, sample_interval_s=SAMPLE_INTERVAL_S,
    )
    return result, planned, recorder, metrics, view, tracer, monitor


def _timed_run(platform, model, tmp_path, *, traced):
    """Wall seconds for one fully-observed run, with or without the
    tracer + anomaly monitor riding the bus.

    The baseline arm is the observer stack ``repro-run`` always
    attaches — recorder, metrics registry, live status view, and the
    JSONL event-log writer — so ``tracing.overhead_pct`` measures what
    the *span layer* adds to a production-observed run, not to an
    artificially bare one.
    """
    bus = EventBus()
    EventRecorder(bus)
    instrument(bus)
    view = StatusView()
    bus.subscribe(view.update)
    writer = EventLogWriter(
        tmp_path / f"overhead-{platform}-{traced}-{time.monotonic_ns()}.jsonl"
    )
    bus.subscribe(writer)
    if traced:
        SpanTracer(bus=bus)
        AnomalyMonitor(bus)
    t0 = time.perf_counter()
    result, _ = simulate_paper_run(N, platform, seed=SEED, model=model,
                                   bus=bus)
    elapsed = time.perf_counter() - t0
    writer.close()
    assert result.success
    return elapsed


def test_tracing_zero_overhead_when_detached(paper_model):
    """The zero-overhead guard: with nothing subscribed, every emitter
    takes the ``bus.active`` fast path — no RunEvent and no Span is
    ever constructed, and the bus never even counts an emit."""
    bus = EventBus()  # no subscribers: scheduler + platforms go deaf
    spans_before = spans_created()
    result, _ = simulate_paper_run(N, "sandhills", seed=SEED,
                                   model=paper_model, bus=bus)
    assert result.success
    assert bus.emitted == 0, (
        "a deaf bus still constructed events — an emitter skipped the "
        "bus.active fast path"
    )
    assert spans_created() == spans_before, (
        "spans were constructed with no tracer attached"
    )


def test_observability_smoke(paper_model, benchmark, tmp_path):
    RESULTS_DIR.mkdir(exist_ok=True)
    report_lines = [
        f"Observability smoke — n={N}, seed={SEED}, "
        f"sampling every {SAMPLE_INTERVAL_S:.0f}s",
        "",
    ]
    bench_sections: dict[str, dict] = {}
    # Span-tracing cost, measured once on the cheaper platform: best
    # of K fully-observed runs with vs without the tracer + monitor.
    bare = min(
        _timed_run("sandhills", paper_model, tmp_path, traced=False)
        for _ in range(OVERHEAD_REPEATS)
    )
    traced = min(
        _timed_run("sandhills", paper_model, tmp_path, traced=True)
        for _ in range(OVERHEAD_REPEATS)
    )
    overhead_pct = max(0.0, (traced - bare) / bare * 100.0)
    assert overhead_pct < OVERHEAD_GATE_PCT, (
        f"span tracing costs {overhead_pct:.1f}% "
        f"(gate {OVERHEAD_GATE_PCT:.0f}%)"
    )
    report_lines += [
        f"tracing overhead: {overhead_pct:.2f}% "
        f"(bare {bare:.3f}s vs traced {traced:.3f}s, "
        f"best of {OVERHEAD_REPEATS})",
        "",
    ]
    for platform in ("sandhills", "osg"):
        result, planned, recorder, metrics, view, tracer, monitor = (
            _observed_run(platform, paper_model)
        )
        assert result.success, f"{platform} run failed"
        events = recorder.events
        spans = tracer.finish()

        # -- the bus is a faithful second witness of the run --------------
        bus_trace = events_to_trace(events)
        assert sorted(
            bus_trace, key=lambda a: (a.job_name, a.attempt)
        ) == sorted(
            result.trace, key=lambda a: (a.job_name, a.attempt)
        ), "bus-derived trace != scheduler trace"

        # -- statistics from events == pegasus-statistics over the trace --
        stats_events = summarize_events(events, dag=planned.dag)
        stats_trace = summarize(result.trace, dag=planned.dag)
        assert stats_events == stats_trace
        assert stats_events.total_jobs == len(planned.dag.jobs)
        assert stats_events.unattempted_jobs == 0

        # -- the live view converged to the same numbers ------------------
        assert view.workflow_done is True
        assert len(view.done) == stats_trace.succeeded_jobs
        assert view.retries == result.trace.retry_count

        # -- sampler produced a plausible utilization series --------------
        samples = [e for e in events if e.kind is EventKind.SAMPLE]
        assert samples, "no utilization samples on the bus"
        peak_sampled = max(e.detail["busy"] for e in samples)
        assert 0 < peak_sampled <= len(planned.dag.jobs)

        # -- metrics registry agrees with the trace -----------------------
        snap = metrics.snapshot()
        finishes = snap["counters"].get("events_total{kind=job.finish}", 0)
        evictions = snap["counters"].get("events_total{kind=job.evict}", 0)
        assert finishes + evictions == len(result.trace)

        # -- exporters: JSONL round-trips, Chrome trace is well-formed ----
        events_path = RESULTS_DIR / f"observability_{platform}_events.jsonl"
        write_events(events_path, events)
        assert events_to_trace(read_events(events_path)) == bus_trace
        # ...and the classic reader sees exactly the attempts.
        assert sorted(
            read_trace(events_path), key=lambda a: (a.job_name, a.attempt)
        ) == sorted(result.trace, key=lambda a: (a.job_name, a.attempt))

        chrome_path = (
            RESULTS_DIR / f"observability_{platform}_trace.chrome.json"
        )
        write_chrome_trace(
            chrome_path, result.trace,
            samples=[
                UtilizationSample(e.time, e.detail["busy"], e.detail["idle"])
                for e in samples
            ],
            workflow=f"blast2cap3-n{N}-{platform}",
        )
        loaded = json.loads(chrome_path.read_text())
        complete = [e for e in loaded["traceEvents"] if e["ph"] == "X"]
        counters = [e for e in loaded["traceEvents"] if e["ph"] == "C"]
        assert counters and complete
        assert all(e["dur"] >= 0 and e["ts"] >= 0 for e in complete)
        exec_events = [e for e in complete if e["cat"] == "exec"]
        assert len(exec_events) == len(result.trace)

        # -- OTLP + Perfetto span exports validate structurally -----------
        otlp_path = RESULTS_DIR / f"observability_{platform}_trace.otlp.json"
        write_otlp_trace(otlp_path, spans)
        otlp = json.loads(otlp_path.read_text())
        otlp_spans = otlp["resourceSpans"][0]["scopeSpans"][0]["spans"]
        assert len(otlp_spans) == len(spans)
        ids = {s["spanId"] for s in otlp_spans}
        assert len(ids) == len(otlp_spans), "span ids must be unique"
        for s in otlp_spans:
            assert len(s["traceId"]) == 32 and len(s["spanId"]) == 16
            assert int(s["endTimeUnixNano"]) >= int(s["startTimeUnixNano"])
            if s.get("parentSpanId"):
                assert s["parentSpanId"] in ids, "dangling parent"

        perfetto_path = (
            RESULTS_DIR / f"observability_{platform}_trace.perfetto.json"
        )
        write_perfetto_trace(perfetto_path, spans)
        perfetto = json.loads(perfetto_path.read_text())
        tracks = {
            p["trackDescriptor"]["uuid"]
            for p in perfetto["packet"] if "trackDescriptor" in p
        }
        slices = [p for p in perfetto["packet"] if "trackEvent" in p]
        assert tracks and slices
        assert all(p["trackEvent"]["trackUuid"] in tracks for p in slices)
        begins = sum(
            1 for p in slices
            if p["trackEvent"]["type"] == "TYPE_SLICE_BEGIN"
        )
        ends = len(slices) - begins
        assert begins == ends, "unbalanced Perfetto slice stack"

        util_path = RESULTS_DIR / f"observability_{platform}_utilization.tsv"
        util_path.write_text(
            "time_s\tbusy\tidle\n"
            + "".join(
                f"{e.time:.0f}\t{e.detail['busy']}\t{e.detail['idle']}\n"
                for e in samples
            )
        )

        # -- makespan attribution: the buckets must tile the makespan --
        attribution = build_report(
            result.trace, dag=planned.dag, events=events,
            label=f"smoke-{platform}-n{N}-seed{SEED}",
        )
        assert (
            abs(
                sum(attribution["attribution"].values())
                - attribution["makespan_s"]
            )
            < 1e-6
        ), "attribution buckets do not sum to the makespan"
        # ...and the span-derived critical path must agree with it:
        # two independent decompositions of the same makespan.
        trace_section = attribution["trace"]
        assert trace_section["agrees_with_attribution"], (
            f"span critical path disagrees with attribution by "
            f"{trace_section['max_bucket_delta_s']:.3f}s"
        )
        assert (
            abs(trace_section["tiling_total_s"] - trace_section["makespan_s"])
            < 1e-6
        ), "span tiling does not sum to the makespan"
        attribution["tracing"] = {
            "overhead_pct": round(overhead_pct, 3),
            "gate_pct": OVERHEAD_GATE_PCT,
        }
        report_path = RESULTS_DIR / f"observability_{platform}_report.json"
        report_path.write_text(json.dumps(attribution, indent=2) + "\n")
        bench_sections[platform] = {
            "makespan_s": attribution["makespan_s"],
            "attribution": attribution["attribution"],
            "counts": attribution["counts"],
            "kickstart": attribution["kickstart"],
            "spans": len(spans),
            "trace_agrees": trace_section["agrees_with_attribution"],
            "alerts": len(monitor.alerts),
            "tracing_overhead_pct": round(overhead_pct, 3),
        }

        report_lines += [
            f"[{platform}] wall={result.trace.wall_time():,.0f}s "
            f"attempts={len(result.trace)} retries={result.trace.retry_count}",
            f"[{platform}] events={len(events)} samples={len(samples)} "
            f"peak_busy_sampled={peak_sampled}",
            f"[{platform}] spans={len(spans)} "
            f"alerts={len(monitor.alerts)} "
            f"span-critical-path == attribution: OK",
            f"[{platform}] bus-trace == scheduler-trace: OK; "
            "summarize_events == summarize: OK",
            "",
        ]
        # Keep a statistics report next to the artifacts for eyeballing.
        report_lines.append(
            render_report(stats_trace, title=f"{platform} n={N} (observed)")
        )
        report_lines.append("")

    write_result("observability_smoke", "\n".join(report_lines))
    update_bench_report(
        "observability_smoke",
        {"n": N, "seed": SEED, "platforms": bench_sections},
    )

    # benchmark: the instrumented run should not be meaningfully slower
    # than the bare one benchmarked in bench_fig4_walltime.
    benchmark(lambda: _observed_run("sandhills", paper_model))
