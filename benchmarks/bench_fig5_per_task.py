"""Fig. 5 — per-task running time on Sandhills and OSG for each n.

Paper claims verified here (§VI-B):

* list-creation and merge tasks take "few minutes"; run_cap3 dominates;
* Sandhills waiting time is "small and negligible"; OSG waiting
  "unevenly changes" (erratic, sometimes huge);
* Sandhills download/install is zero; OSG pays it on every task;
* run_cap3 kickstart decreases as n grows on both platforms;
* per-task *kickstart* on OSG is lower than Sandhills (faster cores) —
  yet the OSG *totals* exceed Sandhills once waiting and
  download/install are added (the §VII observation).
"""

import statistics

import pytest
from conftest import NS, write_result

from repro.core.workflow_factory import simulate_paper_run
from repro.util.tables import Table
from repro.wms.statistics import per_transformation


@pytest.fixture(scope="module")
def traces(paper_model):
    out = {}
    for platform in ("sandhills", "osg"):
        for n in NS:
            result, _ = simulate_paper_run(
                n, platform, seed=1, model=paper_model
            )
            assert result.success
            out[(platform, n)] = result.trace
    return out


def cap3_stats(traces, platform, n):
    groups = {
        t.transformation: t
        for t in per_transformation(traces[(platform, n)])
    }
    return groups["run_cap3"]


def test_fig5_per_task_breakdown(traces, benchmark):
    table = Table(
        ["platform", "n", "transformation", "count", "mean kickstart (s)",
         "mean waiting (s)", "max waiting (s)", "mean dl/install (s)"],
        title="Fig. 5 — per-task running time breakdown (seed 1)",
    )
    for platform in ("sandhills", "osg"):
        for n in NS:
            for t in per_transformation(traces[(platform, n)]):
                table.add_row(
                    platform, n, t.transformation, t.count,
                    round(t.mean_kickstart, 1), round(t.mean_waiting, 1),
                    round(t.max_waiting, 1),
                    round(t.mean_download_install, 1),
                )
    write_result("fig5_per_task", table.render())

    for n in NS:
        campus = cap3_stats(traces, "sandhills", n)
        grid = cap3_stats(traces, "osg", n)

        # Sandhills: waiting small, no download/install.
        assert campus.mean_waiting < 700
        assert campus.mean_download_install == 0.0

        # OSG: download/install on every task.
        assert grid.mean_download_install > 150
        # Erratic waiting needs enough tasks for a spike to be certain.
        if n >= 100:
            assert (
                grid.max_waiting > 3 * grid.mean_waiting
                or grid.max_waiting > 1000
            )

        # §VII: raw kickstart per task is *better* on OSG (faster cores).
        assert grid.mean_kickstart < campus.mean_kickstart

    # run_cap3 kickstart decreases with n on both platforms.
    for platform in ("sandhills", "osg"):
        kick = [cap3_stats(traces, platform, n).mean_kickstart for n in NS]
        assert kick[0] > kick[1] > kick[2] > kick[3]

    # The bookkeeping tasks take "few minutes" on Sandhills.
    for t in per_transformation(traces[("sandhills", 100)]):
        if t.transformation in (
            "create_transcript_list", "create_alignment_list",
            "merge_joined", "merge_unjoined", "concat_final",
        ):
            assert 30 < t.mean_kickstart < 600

    benchmark(lambda: per_transformation(traces[("osg", 500)]))


def test_osg_waiting_erratic_across_tasks(traces):
    """The paper: OSG waiting "unevenly changes, increases and
    decreases" across tasks — i.e. high dispersion; Sandhills doesn't."""
    for n in (100, 300, 500):
        osg_waits = [
            a.waiting_time
            for a in traces[("osg", n)].successful()
            if a.transformation == "run_cap3"
        ]
        campus_waits = [
            a.waiting_time
            for a in traces[("sandhills", n)].successful()
            if a.transformation == "run_cap3"
        ]
        osg_cv = statistics.pstdev(osg_waits) / statistics.mean(osg_waits)
        campus_cv = statistics.pstdev(campus_waits) / statistics.mean(campus_waits)
        assert osg_cv > campus_cv


def test_osg_failures_only(traces):
    """"we encountered no failures ... on Sandhills"; on OSG failures
    and retries were observed."""
    for n in NS:
        assert not traces[("sandhills", n)].failures()
    assert any(traces[("osg", n)].failures() for n in NS)
