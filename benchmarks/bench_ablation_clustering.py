"""Ablation — Pegasus task clustering on OSG (§III).

"Pegasus also allows clustering of small tasks into larger clusters
that are scheduled and executed to the same remote site. This setting
allows improvement of the performance and reducing the remote execution
overheads."

Two scenarios:

* **small tasks** (the §III case): 500 one-minute jobs whose
  download/install overhead dwarfs the payload — clustering pays off in
  wall time, dramatically;
* **the blast2cap3 n=500 workflow**: payloads of many minutes — the
  overhead saving is real, but merged super-jobs run longer, expose
  more work to preemption, and shrink parallelism, so wall time
  *degrades* at aggressive sizes. Clustering is for small tasks, which
  is precisely how the paper qualifies it.
"""

import statistics

from conftest import write_result

from repro.core.workflow_factory import default_catalogs, simulate_paper_run
from repro.dagman.scheduler import DagmanScheduler
from repro.sim.engine import Simulator
from repro.sim.grid import OpportunisticGrid
from repro.sim.rng import RngStreams
from repro.util.tables import Table
from repro.wms.dax import ADag, AbstractJob, File
from repro.wms.planner import PlannerOptions, plan

SIZES = (1, 5, 20)
SEEDS = (0, 1, 2)


def _small_task_adag(n_tasks: int = 500, runtime: float = 60.0) -> ADag:
    adag = ADag(name="small-tasks")
    raw = File("input.dat", size=1_000_000)
    for i in range(n_tasks):
        adag.add_job(
            AbstractJob(
                id=f"tiny_{i}", transformation="run_cap3", runtime=runtime
            )
            .add_input(raw)
            .add_output(File(f"out_{i}.dat", size=1000))
        )
    return adag


def _run_small_tasks(cluster_size: int, seed: int) -> float:
    adag = _small_task_adag()
    sites, tc, rc = default_catalogs()
    rc.add("input.dat", "file:///input.dat")
    planned = plan(
        adag, site_name="osg", sites=sites, transformations=tc,
        replicas=rc,
        options=PlannerOptions(retries=20, cluster_size=cluster_size),
    )
    env = OpportunisticGrid(Simulator(), streams=RngStreams(seed=seed))
    result = DagmanScheduler(planned.dag, env).run()
    assert result.success
    return result.trace.wall_time()


def test_clustering_wins_for_small_tasks(benchmark):
    walls = {
        size: statistics.median(
            _run_small_tasks(size, seed) for seed in SEEDS
        )
        for size in SIZES
    }
    table = Table(
        ["cluster size", "wall time (s)"],
        title="Clustering 500 one-minute tasks on OSG (median of 3 seeds)",
    )
    for size in SIZES:
        table.add_row(size, round(walls[size]))
    write_result("ablation_clustering_small", table.render())

    # §III: for small tasks, clustering improves performance outright.
    assert walls[5] < walls[1]
    assert walls[20] < walls[1]

    benchmark(lambda: _run_small_tasks(5, 0))


def _blast2cap3_run(paper_model, cluster_size: int):
    walls, setups = [], []
    for seed in SEEDS:
        result, _ = simulate_paper_run(
            500, "osg", seed=seed, model=paper_model,
            planner_options=PlannerOptions(
                retries=20, cluster_size=cluster_size
            ),
        )
        assert result.success
        walls.append(result.trace.wall_time())
        setups.append(
            sum(a.download_install_time for a in result.trace.successful())
        )
    return statistics.median(walls), statistics.median(setups)


def test_clustering_tradeoff_for_long_tasks(paper_model):
    results = {
        size: _blast2cap3_run(paper_model, size) for size in SIZES
    }
    table = Table(
        ["cluster size", "osg wall (s)", "total download/install (s)"],
        title="Clustering blast2cap3 n=500 on OSG (median of 3 seeds)",
    )
    for size in SIZES:
        wall, setup = results[size]
        table.add_row(size, round(wall), round(setup))
    write_result("ablation_clustering_blast2cap3", table.render())

    # The overhead mechanism works regardless of payload size...
    assert results[5][1] < 0.5 * results[1][1]
    assert results[20][1] < results[5][1]
    # ...but long merged payloads lose parallelism and court eviction:
    # aggressive clustering clearly degrades this workflow.
    assert results[20][0] > results[5][0]
    # Moderate clustering stays in the same band as unclustered.
    assert results[5][0] < 1.35 * results[1][0]
