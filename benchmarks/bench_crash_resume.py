"""Write-ahead journal costs: logging overhead and resume latency.

The durability layer (``repro.resilience.journal``) claims a journaled
run pays a small, bounded tax over plain event logging, and that
recovery replays a crashed journal fast enough to make kill-anywhere
resume routine. This bench turns both claims into numbers and a CI
gate:

* **overhead** — a synthetic layered DAG at n=10k runs through the
  incremental scheduler with the observer stack ``repro-run`` always
  attaches (``EventRecorder``, ``instrument`` metrics,
  ``EventLogWriter``) plus the write-ahead journal (batch fsync, the
  default). The journal's marginal cost must stay < 15% of what the
  same run costs without it;
* **resume replay** — the same run is crashed (journal abandoned
  without its final compacting snapshot), then :func:`recover` replays
  the full WAL; the cost lands as milliseconds per 1k records;
* **regression gate** — both numbers land in
  ``crash_resume_report.json``; CI compares against the committed
  ``baseline_crash_resume.json`` via ``repro-report compare
  --fail-on`` (costs, so "higher is worse" matches the tooling).

**How the overhead is measured.** Naive A/B wall-clock (one run with
the journal, one without) is hopeless on a shared CI box: observed
run-to-run swings here exceed +/-25% — frequency scaling and noisy
neighbours move *both* configurations by more than the quantity being
measured, and no min/median estimator over affordable repeats recovers
a 15% gate from that. Instead the bench measures the journal's cost
*inside a single journaled run*: marker subscribers registered
immediately before and after the journal on the same bus (with the
same kind filters) bracket exactly the journal's callback work, and
the overhead is ``bracketed / (total - bracketed)`` — numerator and
denominator come from the same run, so box-speed noise cancels out of
the ratio. Across repeats this estimate is stable to well under a
point where A/B wall-clock swings by twenty.

The pre-marker warms the one-slot serialization memo
(:func:`serialize_event`) before starting its stopwatch, which charges
event flatten+serialize time to the baseline side — correctly so: the
event log writer pays that cost in a journal-less run and hits the
memo in a journaled one, so it is shared infrastructure, not journal
overhead. The bracket excludes the bus's dispatch bookkeeping for the
journal's subscriptions (a kind-filter check per event) and the
journal's state-change filter callback (a dict lookup that only does
real work on a permanent-failure transition, where it falls through to
the bracketed durable path) — together well under 1% here, against
several points of gate margin. Each bracketed interval *includes* the
markers' own clock reads and dispatch hops, so the measurement errs
against the journal, the right direction for a gate.

Timed runs pause GC (both the measured region and the informational
plain run, as ``timeit`` does) and put workdirs on ``/dev/shm`` when
it exists: fsync latency on a shared disk swings two orders of
magnitude with unrelated load, and a regression *gate* has to track
the journal's deterministic write-path cost, not the disk's mood.
"""

import gc
import json
import os
import statistics
import tempfile
import time
from pathlib import Path

from bench_engine_throughput import WIDTH, layered_dag
from conftest import RESULTS_DIR, update_bench_report, write_result

from repro.dagman.events import JobAttempt, JobStatus
from repro.dagman.scheduler import DagmanScheduler
from repro.observe.bus import EventBus, EventRecorder
from repro.observe.events import attempt_events
from repro.observe.log import EventLogWriter, serialize_event
from repro.observe.metrics import instrument
from repro.resilience.journal import DURABLE_KINDS, Journal, recover
from repro.sim.engine import Simulator

N = int(os.environ.get("REPRO_BENCH_CRASH_N", "10000"))
REPEATS = 3
MAX_OVERHEAD_PCT = 15.0
SHM = Path("/dev/shm")
WORK_ROOT = str(SHM) if SHM.is_dir() and os.access(SHM, os.W_OK) else None

#: The kinds the markers bracket: the journal's durable subscription,
#: where all its per-record work happens. (Its state-change filter
#: callback is excluded — see the module docstring.)
JOURNAL_KINDS = frozenset(DURABLE_KINDS)


class BusEnvironment:
    """Like the engine bench's FastEnvironment, but honest about the
    event stream: terminal events go over the bus (the way every real
    backend delivers them), so the journal sees what it would see in
    production."""

    def __init__(self, bus: EventBus) -> None:
        self.sim = Simulator()
        self.bus = bus

    @property
    def now(self) -> float:
        return self.sim.now

    def submit(self, job, on_complete, *, attempt=1):
        submit_time = self.sim.now

        def finish() -> None:
            record = JobAttempt(
                job_name=job.name,
                transformation=job.transformation,
                site="bench",
                machine="m",
                attempt=attempt,
                submit_time=submit_time,
                setup_start=submit_time,
                exec_start=submit_time,
                exec_end=self.sim.now,
                status=JobStatus.SUCCEEDED,
            )
            for event in attempt_events(record):
                self.bus.emit(event)
            on_complete(record)

        self.sim.schedule(job.runtime, finish)

    def run_until_complete(self) -> None:
        self.sim.run()


def _observed_run(dag, workdir: Path, *, journal: bool,
                  snapshot_every: int = 1000) -> float:
    """One run with the standard observer stack; returns wall seconds.

    With ``journal=True`` the journal is abandoned crash-style (flushed
    WAL, no compacting close) so the replay measurement has the full
    record stream to chew on.
    """
    bus = EventBus()
    EventRecorder(bus)
    instrument(bus)
    jr = (
        Journal(workdir / "journal", bus=bus, snapshot_every=snapshot_every)
        if journal
        else None
    )
    env = BusEnvironment(bus)
    gc.collect()
    gc.disable()
    try:
        started = time.perf_counter()
        with EventLogWriter(workdir / "events.jsonl", bus):
            result = DagmanScheduler(
                dag, env, max_jobs=WIDTH * 2, bus=bus
            ).run()
        if jr is not None:
            jr._fh.close()
        elapsed = time.perf_counter() - started
    finally:
        gc.enable()
    assert result.success
    return elapsed


def _journal_marginal(dag, workdir: Path) -> tuple[float, float]:
    """One journaled run; returns ``(journal_seconds, total_seconds)``.

    ``journal_seconds`` is the summed time spent inside the journal's
    bus callbacks, measured by marker subscribers registered around the
    journal with the same kind filters (see the module docstring).
    """
    bus = EventBus()
    EventRecorder(bus)
    instrument(bus)
    stamp = [0.0]
    spent = [0.0]

    def pre(event) -> None:
        # Warm the serialization memo first: flatten+serialize is paid
        # by the event log writer in a plain run, so it belongs to the
        # baseline side of the ratio, not to the journal.
        serialize_event(event)
        stamp[0] = time.perf_counter()

    def post(event) -> None:
        spent[0] += time.perf_counter() - stamp[0]

    bus.subscribe(pre, kinds=JOURNAL_KINDS)
    jr = Journal(workdir / "journal", bus=bus, snapshot_every=1000)
    bus.subscribe(post, kinds=JOURNAL_KINDS)
    env = BusEnvironment(bus)
    gc.collect()
    gc.disable()
    try:
        started = time.perf_counter()
        with EventLogWriter(workdir / "events.jsonl", bus):
            result = DagmanScheduler(
                dag, env, max_jobs=WIDTH * 2, bus=bus
            ).run()
        jr._fh.close()  # crash-style abandon
        total = time.perf_counter() - started
    finally:
        gc.enable()
    assert result.success
    return spent[0], total


def test_crash_resume_costs():
    dag = layered_dag(N)
    ratios, samples = [], []
    with tempfile.TemporaryDirectory(dir=WORK_ROOT) as tmp:
        tmp = Path(tmp)
        # informational: what the whole observed run costs without a
        # journal (wall clock — noisy, reported but not gated)
        base = tmp / "plain"
        base.mkdir()
        plain_s = _observed_run(dag, base, journal=False)

        for i in range(REPEATS):
            jdir = tmp / f"journaled{i}"
            jdir.mkdir()
            journal_s, total_s = _journal_marginal(dag, jdir)
            samples.append((journal_s, total_s))
            ratios.append(journal_s / (total_s - journal_s) * 100.0)
        overhead_pct = statistics.median(ratios)
        # the run the median came from (REPEATS is odd), for the report
        journal_s, total_s = samples[ratios.index(overhead_pct)]

        # -- resume replay latency over a full, uncompacted WAL ---------
        # The overhead runs use the shipped snapshot cadence, which
        # compacts the WAL down to a tiny suffix; for a worst-case
        # replay number, run once more with compaction disabled.
        replay_run = tmp / "replay"
        replay_run.mkdir()
        _observed_run(dag, replay_run, journal=True, snapshot_every=10**9)
        replay_dir = replay_run / "journal"
        started = time.perf_counter()
        recovered = recover(replay_dir)
        replay_s = time.perf_counter() - started
        assert recovered.done == set(dag.jobs)
        assert recovered.replayed > N  # submits + finishes, at least
        replay_ms_per_1k = replay_s * 1000.0 / (recovered.replayed / 1000.0)

    lines = [
        f"Write-ahead journal costs — layered synthetic DAG, n={N:,}",
        "",
        f"observed run, no journal:     {plain_s:.2f}s (wall, informational)",
        f"journal callbacks, in-run:    {journal_s:.3f}s of {total_s:.2f}s",
        f"journal overhead:    {overhead_pct:.1f}% of the journal-less run "
        f"(median of {REPEATS}; gate: < {MAX_OVERHEAD_PCT:g}%)",
        "",
        f"recovery replay: {recovered.replayed:,} records in "
        f"{replay_s * 1000.0:.0f}ms ({replay_ms_per_1k:.2f}ms per 1k)",
    ]
    write_result("crash_resume", "\n".join(lines))
    update_bench_report(
        "crash_resume",
        {
            "n": N,
            "plain_wall_s": plain_s,
            "journal_marginal_s": journal_s,
            "journaled_total_s": total_s,
            "overhead_pct": overhead_pct,
            "replayed_records": recovered.replayed,
            "replay_s": replay_s,
            "replay_ms_per_1k": replay_ms_per_1k,
        },
    )

    report = {
        "schema": "repro-report/1",
        "label": f"crash-resume-n{N}",
        "workflow": f"layered-{N}",
        "journal": {
            "overhead_pct": overhead_pct,
            "replay_ms_per_1k": replay_ms_per_1k,
        },
    }
    path = RESULTS_DIR / "crash_resume_report.json"
    path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")

    assert overhead_pct < MAX_OVERHEAD_PCT, (
        f"journaling cost {overhead_pct:.1f}% over plain event logging "
        f"at n={N} (want < {MAX_OVERHEAD_PCT:g}%)"
    )
