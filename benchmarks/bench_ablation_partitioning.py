"""Ablation — how much of the wall time is avoidable partition skew?

DESIGN.md calls out the straggler model: the paper's split() deals
clusters round-robin, so the largest *partition* (not the largest
cluster) bounds the parallel section. This ablation replaces round-robin
with longest-processing-time packing and measures how much wall time
that recovers — and how much is irreducible because the single largest
cluster cannot be split across run_cap3 tasks.
"""

from conftest import write_result

from repro.core.workflow_factory import simulate_paper_run
from repro.util.tables import Table


def test_balanced_partitioning_ablation(paper_model, benchmark):
    import statistics

    table = Table(
        ["n", "round_robin wall (s)", "balanced wall (s)", "recovered",
         "max cluster floor (s)"],
        title="Ablation — split() strategy (Sandhills, median of 3 seeds)",
    )
    floor = paper_model.max_cluster_cost()
    results = {}
    for n in (100, 300, 500):
        rr_walls, lpt_walls = [], []
        for seed in (0, 1, 2):
            rr, _ = simulate_paper_run(n, "sandhills", seed=seed,
                                       model=paper_model,
                                       partition_strategy="round_robin")
            lpt, _ = simulate_paper_run(n, "sandhills", seed=seed,
                                        model=paper_model,
                                        partition_strategy="balanced")
            assert rr.success and lpt.success
            rr_walls.append(rr.trace.wall_time())
            lpt_walls.append(lpt.trace.wall_time())
        rr_wall = statistics.median(rr_walls)
        lpt_wall = statistics.median(lpt_walls)
        results[n] = (rr_wall, lpt_wall)
        table.add_row(
            n, round(rr_wall), round(lpt_wall),
            f"{100 * (1 - lpt_wall / rr_wall):.1f}%",
            round(floor),
        )
    write_result("ablation_partitioning", table.render())

    for n, (rr_wall, lpt_wall) in results.items():
        # Balanced packing never loses beyond node-speed noise (+-15%
        # per-node jitter means the same task costs different wall time
        # depending on which node the dispatch order lands it on)...
        assert lpt_wall <= 1.12 * rr_wall
        # ...and cannot beat the unsplittable-largest-cluster floor
        # (divided by the fastest plausible node).
        assert lpt_wall > floor / 1.3

    # At n=100 round-robin skew is real: LPT recovers a visible chunk.
    rr_wall, lpt_wall = results[100]
    assert lpt_wall < 0.97 * rr_wall

    benchmark(
        lambda: paper_model.partition_runtimes(300, strategy="balanced")
    )


def test_partition_strategies_conserve_work(paper_model):
    for n in (10, 100, 500):
        rr = paper_model.partition_runtimes(n, strategy="round_robin")
        lpt = paper_model.partition_runtimes(n, strategy="balanced")
        assert abs(sum(rr) - sum(lpt)) < 1e-6
        assert max(lpt) <= max(rr) + 1e-9
