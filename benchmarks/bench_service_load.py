"""Multi-tenant service-layer load: sustained throughput + matchmaking cost.

The PR 9 service layer claims two things worth gating:

* **sustained multi-tenant throughput** — 8 tenants submitting 1,000-job
  blast2cap3-shaped workflows through admission control, per-tenant
  quota checks, and the stride fair-share pump, with per-tenant p95
  turnaround reported. Throughput is measured on the *virtual* clock
  (``workflows_per_minute_sustained``), so the number is deterministic
  and the gate metric is its inverse (``seconds_per_workflow`` — the
  tooling's thresholds treat "higher" as "worse");
* **sublinear matchmaking** — the indexed matchmaker's µs/dispatch must
  not grow with pool size the way the linear oracle's does. The sweep
  times both strategies over the same find/claim/release history at
  three pool sizes and asserts the indexed cost grows by less than half
  the pool growth factor (in practice it is near-flat: cost scales with
  bucket count, and the bucket count is fixed).

CI runs the smoke tier (``REPRO_BENCH_SERVICE_JOBS=120``); the default
here is the developer-facing 1k-job tier. Gate numbers land in
``service_load_report.json`` and CI compares them against the committed
``baseline_service_load.json`` via ``repro-report compare --fail-on``.
"""

import json
import os
import time

from conftest import RESULTS_DIR, update_bench_report, write_result

from repro.dagman.condor import ClassAd
from repro.service.loadgen import LoadSpec, run_load
from repro.sim.matchmaker import create_matchmaker
from repro.sim.machine import make_machines
from repro.sim.rng import RngStreams

TENANTS = 8
WORKFLOWS_PER_TENANT = 2

#: Pool sizes for the matchmaker sweep (16x growth end to end).
POOL_SIZES = (400, 1600, 6400)
#: Indexed µs/dispatch may grow at most this fraction of pool growth.
SUBLINEAR_FACTOR = 0.5


def _jobs_per_workflow() -> int:
    return int(os.environ.get("REPRO_BENCH_SERVICE_JOBS", "1000"))


def _sweep_pool(size: int) -> list:
    rng = RngStreams(seed=17).stream(f"bench.pool.{size}")
    machines = []
    per_site = size // 4
    for i, prob in enumerate((1.0, 0.6, 0.3, 0.0)):
        machines.extend(
            make_machines(
                rng,
                site=f"site{i}",
                count=per_site,
                software_prob=prob,
            )
        )
    return machines


def _sweep_ads() -> list[ClassAd]:
    """A dispatch mix: unconstrained, software-requiring, and
    impossible jobs (the head-of-line blocker that made the old
    rescan O(queue x pool))."""
    reqs = [
        None,
        "has_python and has_biopython and has_cap3",
        "site == 'nowhere'",
    ]
    return [
        ClassAd(
            name=f"job{i}",
            attributes={"transformation": "blast2cap3"},
            requirements=reqs[i % len(reqs)],
            rank="speed",
        )
        for i in range(120)
    ]


def _us_per_dispatch(strategy: str, size: int, rounds: int = 4) -> float:
    matchmaker = create_matchmaker(strategy, _sweep_pool(size))
    ads = _sweep_ads()
    started = time.perf_counter()
    finds = 0
    for _ in range(rounds):
        claimed = []
        for ad in ads:
            chosen = matchmaker.find(ad)
            finds += 1
            if chosen is not None:
                matchmaker.claim(chosen)
                claimed.append(chosen)
        for name in claimed:
            matchmaker.release(name)
    elapsed = time.perf_counter() - started
    return elapsed / finds * 1e6


def test_service_load_and_matchmaker_cost():
    jobs = _jobs_per_workflow()
    lines = [
        f"Multi-tenant service load — {TENANTS} tenants x "
        f"{WORKFLOWS_PER_TENANT} workflows x {jobs} jobs",
        "",
    ]

    # -- sustained multi-tenant load (virtual clock, deterministic) -----
    spec = LoadSpec(
        tenants=TENANTS,
        workflows_per_tenant=WORKFLOWS_PER_TENANT,
        jobs_per_workflow=jobs,
        workflows_per_minute=2.0,
        tenant_weights=(2.0, 1.0),
    )
    started = time.perf_counter()
    result = run_load(spec, backend="cluster", seed=0)
    host_elapsed = time.perf_counter() - started
    expected = TENANTS * WORKFLOWS_PER_TENANT
    assert result["workflows_completed"] == expected
    assert result["workflows_succeeded"] == expected
    sustained = result["workflows_per_minute_sustained"]
    seconds_per_workflow = result["makespan_s"] / expected
    lines += [
        f"completed {expected} workflows ({result['jobs_released']:,} jobs) "
        f"in {result['makespan_s']:,.0f} virtual s "
        f"[{host_elapsed:.1f}s host]",
        f"sustained: {sustained:.2f} workflows/min "
        f"({seconds_per_workflow:,.0f} s/workflow)",
        "",
        "tenant        weight  p95 turnaround (s)",
    ]
    p95s = result["per_tenant_p95_turnaround_s"]
    assert len(p95s) == TENANTS
    for i, (tenant, p95) in enumerate(sorted(p95s.items())):
        assert p95 > 0, f"no turnaround distribution for {tenant}"
        lines.append(f"{tenant}  {spec.weight_of(i):>6g}  {p95:>18,.0f}")
    lines.append("")

    # -- grid tier: the indexed path under real dispatch traffic --------
    grid_spec = LoadSpec(
        tenants=TENANTS,
        workflows_per_tenant=1,
        jobs_per_workflow=min(jobs, 120),
        workflows_per_minute=2.0,
        require_software_prob=0.5,
    )
    grid_result = run_load(grid_spec, backend="grid", seed=0)
    assert grid_result["workflows_completed"] == TENANTS
    mm = grid_result["matchmaker"]
    assert mm["strategy"] == "IndexedMatchmaker"
    assert mm["ads_scanned"] == 0, "grid dispatch fell off the indexed path"
    assert mm["linear_fallbacks"] == 0
    lines += [
        f"grid tier: {grid_result['jobs_released']:,} jobs, "
        f"{mm['finds']:,} finds, {mm['bucket_probes']:,} bucket probes, "
        f"0 ads scanned",
        "",
    ]

    # -- matchmaker µs/dispatch sweep (sublinear growth gate) -----------
    lines.append("pool size   indexed µs/find   linear µs/find")
    indexed_cost = {}
    linear_cost = {}
    for size in POOL_SIZES:
        indexed_cost[size] = _us_per_dispatch("indexed", size)
        linear_cost[size] = _us_per_dispatch("linear", size)
        lines.append(
            f"{size:>9,}   {indexed_cost[size]:>15.2f}   "
            f"{linear_cost[size]:>14.2f}"
        )
    small, large = POOL_SIZES[0], POOL_SIZES[-1]
    pool_growth = large / small
    indexed_growth = indexed_cost[large] / indexed_cost[small]
    lines += [
        "",
        f"pool grew {pool_growth:g}x; indexed cost grew "
        f"{indexed_growth:.2f}x (gate: < {SUBLINEAR_FACTOR * pool_growth:g}x), "
        f"linear {linear_cost[large] / linear_cost[small]:.2f}x",
    ]
    assert indexed_growth < SUBLINEAR_FACTOR * pool_growth, (
        f"indexed matchmaker cost grew {indexed_growth:.1f}x over a "
        f"{pool_growth:g}x pool — not sublinear"
    )

    write_result("service_load", "\n".join(lines))
    update_bench_report(
        "service",
        {
            "spec": result["spec"],
            "makespan_s": result["makespan_s"],
            "host_elapsed_s": host_elapsed,
            "workflows_per_minute_sustained": sustained,
            "seconds_per_workflow": seconds_per_workflow,
            "per_tenant_p95_turnaround_s": p95s,
            "grid_matchmaker": mm,
            "matchmaker_sweep": {
                str(size): {
                    "indexed_us_per_dispatch": indexed_cost[size],
                    "linear_us_per_dispatch": linear_cost[size],
                }
                for size in POOL_SIZES
            },
        },
    )

    # -- the regression-gate report (repro-report compare --fail-on) ----
    slo = result["slo"]
    p95_turnaround = max(
        row["turnaround_s"]["p95"] for row in slo.values()
    )
    p95_queue_wait = max(
        row["queue_wait_s"]["p95"] for row in slo.values()
    )
    report = {
        "schema": "repro-report/1",
        "label": f"service-load-{TENANTS}x{WORKFLOWS_PER_TENANT}x{jobs}",
        "workflow": "service-load",
        "service": {
            "seconds_per_workflow": seconds_per_workflow,
            "p95_turnaround_s": p95_turnaround,
            "p95_queue_wait_s": p95_queue_wait,
            "matchmaker_us_per_dispatch": indexed_cost[large],
        },
    }
    path = RESULTS_DIR / "service_load_report.json"
    path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
