"""§VII future work — clouds as the third execution platform, built.

The paper: "Using academic and commercial clouds as an execution
platform for the blast2cap3 workflow built in this paper will be
challenging, but important and useful further step of this research."

This bench runs the workflow on the cloud model next to Sandhills and
OSG and reports the dimension neither of those platforms has: dollars.
Also includes a spot-market variant (cheap but reclaimable — OSG-like
risk at cloud-like setup cost).
"""

from conftest import write_result

from repro.core.workflow_factory import environment_for, simulate_paper_run
from repro.sim.cloud import CloudConfig, CloudPlatform
from repro.sim.failures import FailureModel
from repro.util.tables import Table


def test_cloud_platform_comparison(paper_model, benchmark):
    table = Table(
        ["n", "sandhills (s)", "osg (s)", "cloud (s)", "cloud cost ($)",
         "spot (s)", "spot cost ($)"],
        title="Future work — cloud as a third platform (seed 1)",
    )
    spot_config = CloudConfig(
        failures=FailureModel(eviction_rate_per_s=1 / 15000.0),
        spot_discount=0.3,
    )
    rows = {}
    for n in (100, 300, 500):
        campus, _ = simulate_paper_run(n, "sandhills", seed=1,
                                       model=paper_model)
        grid, _ = simulate_paper_run(n, "osg", seed=1, model=paper_model)
        cloud, _ = simulate_paper_run(n, "cloud", seed=1, model=paper_model)
        cloud_env = environment_for(cloud)
        spot, _ = simulate_paper_run(n, "cloud", seed=1, model=paper_model,
                                     cloud_config=spot_config)
        spot_env = environment_for(spot)
        assert campus.success and grid.success and cloud.success and spot.success
        rows[n] = (campus, grid, cloud, cloud_env, spot, spot_env)
        table.add_row(
            n,
            round(campus.trace.wall_time()),
            round(grid.trace.wall_time()),
            round(cloud.trace.wall_time()),
            round(cloud_env.billed_cost(), 2),
            round(spot.trace.wall_time()),
            round(spot_env.billed_cost(), 2),
        )
    write_result("cloud_future_work", table.render())

    for n, (campus, grid, cloud, cloud_env, spot, spot_env) in rows.items():
        assert isinstance(cloud_env, CloudPlatform)
        # No software-setup tax on the cloud (images) -> beats OSG.
        assert cloud.trace.wall_time() < grid.trace.wall_time()
        # Boot time keeps it within ~1.5x of the dedicated campus slots.
        assert cloud.trace.wall_time() < 1.5 * campus.trace.wall_time()
        # Money is now a first-class output.
        assert cloud_env.billed_cost() > 0
        # Spot runs cost less per instance-hour...
        spot_rate = spot_env.billed_cost() / max(1, spot_env.instance_seconds())
        demand_rate = cloud_env.billed_cost() / max(1, cloud_env.instance_seconds())
        assert spot_rate < demand_rate
        # ...but reclaims mean retries, so wall time suffers vs on-demand.
        assert spot.trace.retry_count >= cloud.trace.retry_count

    benchmark(lambda: simulate_paper_run(300, "cloud", seed=0,
                                         model=paper_model))
