"""Fig. 1 — the general transcriptome assembly pipeline, for real.

Fig. 1 is structural (preprocess → assemble → post-process); its
reproduction is the pipeline executing end to end with each stage doing
its job: preprocessing drops bad reads, assembly collapses reads into
transcript-length contigs, post-processing removes redundancy.
"""

import random

import pytest

from conftest import write_result

from repro.bio.fastq import FastqRecord, phred_to_quality
from repro.core.pipeline import run_transcriptome_pipeline
from repro.datagen.proteins import random_protein_db
from repro.datagen.reads import ReadSimSpec, simulate_paired_reads
from repro.datagen.transcripts import TranscriptomeSpec, generate_transcriptome
from repro.util.tables import Table


@pytest.fixture(scope="module")
def pipeline_run():
    proteins = random_protein_db(3, seed=31, min_length=150, max_length=200)
    transcriptome = generate_transcriptome(
        proteins,
        TranscriptomeSpec(
            mean_fragments_per_gene=1.0, sigma_fragments=0.0,
            fragment_min_fraction=1.0, fragment_max_fraction=1.0,
            utr_length=0, error_rate=0.0, reverse_fraction=0.0,
        ),
        seed=32,
    )
    reads = []
    for record in transcriptome.transcripts:
        for r1, r2 in simulate_paired_reads(
            record.seq,
            ReadSimSpec(coverage=12.0, fragment_mean=250, fragment_sd=15),
            seed=abs(hash(record.id)) % 2**31,
            id_prefix=record.id,
        ):
            reads.extend((r1, r2))
    # Add junk reads the preprocessing stage must reject.
    rng = random.Random(33)
    for i in range(20):
        seq = "".join(rng.choice("ACGT") for _ in range(100))
        reads.append(
            FastqRecord(
                id=f"junk{i}",
                seq=seq,
                quality=phred_to_quality([3] * 100),
            )
        )
    result = run_transcriptome_pipeline(reads, proteins)
    return proteins, transcriptome, reads, result


def test_fig1_pipeline_stages(pipeline_run, benchmark):
    proteins, transcriptome, reads, result = pipeline_run

    table = Table(
        ["stage", "in", "out", "seconds"],
        title="Fig. 1 — pipeline stage accounting (real execution)",
    )
    for stage in result.stages:
        table.add_row(stage.name, stage.input_count, stage.output_count,
                      round(stage.seconds, 2))
    write_result("fig1_pipeline", table.render())

    # Preprocessing rejected the junk.
    assert result.quality.dropped >= 20
    # Assembly collapsed reads dramatically.
    assemble_stage = result.stages[1]
    assert assemble_stage.output_count < 0.2 * assemble_stage.input_count
    # Contigs reach transcript scale.
    assert result.n50 > 300
    # Post-processing never increases the sequence count.
    for stage in result.stages[2:]:
        assert stage.output_count <= stage.input_count

    # benchmark: preprocessing throughput (the stage every read passes).
    from repro.bio.quality import quality_filter

    benchmark(lambda: sum(1 for _ in quality_filter(reads)))
