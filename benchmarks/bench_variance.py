"""§VI-A variability claim — run-to-run spread, quantified.

"We must emphasize that the running time for the both platforms and
the optimal number of used clusters of transcripts may vary for every
new run due to the availability of the current resources."

This bench runs each configuration over several independent seeds and
asserts that the spread behaves the way the paper's explanation
predicts: OSG (opportunistic resources, failures, retries) varies far
more than the campus cluster (dedicated after allocation).
"""

from conftest import write_result

from repro.experiments.sweep import run_sweep, sweep_table

SEEDS = range(5)


def test_run_to_run_variability(paper_model, benchmark):
    sweep = run_sweep(
        ["sandhills", "osg"], [100, 300], seeds=SEEDS, model=paper_model
    )
    write_result(
        "variance",
        sweep_table(
            sweep, title="Run-to-run variability (5 seeds per config)"
        ).render(),
    )

    for n in (100, 300):
        campus = sweep.get("sandhills", n)
        grid = sweep.get("osg", n)
        # OSG varies more, absolutely and relatively.
        assert grid.stdev > campus.stdev
        assert grid.cv > campus.cv
        # The campus cluster is steady: spread within ~20% of the mean.
        assert campus.cv < 0.2
        # Sandhills never needs retries; OSG does somewhere in the sweep.
        assert campus.total_retries == 0
    assert any(
        sweep.get("osg", n).total_retries > 0 for n in (100, 300)
    )

    # The optimum n itself is stable on Sandhills across this seed set.
    assert sweep.best_n("sandhills") in (100, 300)

    benchmark(
        lambda: run_sweep(["sandhills"], [100], seeds=range(2),
                          model=paper_model)
    )
