"""§VII claim — with waiting and download/install excluded, OSG wins.

"However, if comparing only the actual duration and running time of
tasks on both platforms, ignoring the 'Waiting Time' and the
'Download/Install Time', OSG gives significantly better results."
"""

from conftest import NS, write_result

from repro.core.workflow_factory import simulate_paper_run
from repro.util.tables import Table
from repro.wms.statistics import per_transformation


def test_osg_raw_kickstart_beats_sandhills(paper_model, benchmark):
    table = Table(
        ["n", "sandhills mean kickstart (s)", "osg mean kickstart (s)",
         "osg advantage", "osg mean total (s)", "sandhills mean total (s)"],
        title="run_cap3: raw kickstart vs end-to-end task time (seed 1)",
    )
    for n in NS:
        campus, _ = simulate_paper_run(n, "sandhills", seed=1,
                                       model=paper_model)
        grid, _ = simulate_paper_run(n, "osg", seed=1, model=paper_model)

        def cap3(trace):
            return next(
                t for t in per_transformation(trace)
                if t.transformation == "run_cap3"
            )

        def cap3_total(trace):
            xs = [a.total_time for a in trace.successful()
                  if a.transformation == "run_cap3"]
            return sum(xs) / len(xs)

        c, g = cap3(campus.trace), cap3(grid.trace)
        table.add_row(
            n, round(c.mean_kickstart, 1), round(g.mean_kickstart, 1),
            f"{100 * (1 - g.mean_kickstart / c.mean_kickstart):.1f}%",
            round(cap3_total(grid.trace), 1),
            round(cap3_total(campus.trace), 1),
        )

        # The §VII claim: raw kickstart better on OSG...
        assert g.mean_kickstart < c.mean_kickstart
        # ...by a "significant" margin (the sites' speed advantage).
        assert g.mean_kickstart < 0.95 * c.mean_kickstart
        # ...yet adding waiting + download/install erases the win for
        # the workflow as a whole (wall time, asserted in bench_fig4).
        assert g.mean_waiting + g.mean_download_install > (
            c.mean_waiting + c.mean_download_install
        )

    write_result("osg_kickstart", table.render())
    benchmark(lambda: simulate_paper_run(100, "osg", seed=1,
                                         model=paper_model))
