"""Engine/scheduler throughput: events/sec and jobs/sec at scale.

The incremental ready-set rewrite (see ``repro.dagman.scheduler``)
claims O(children + log n) per completion where the legacy loop paid a
full O(n log n) rescan. This bench turns that claim into numbers and a
CI gate:

* **speedup** — a synthetic layered DAG at n=10k runs through both the
  incremental scheduler and :class:`LegacyRescanScheduler`; the rewrite
  must be at least 10x faster in jobs/sec (it is closer to 100x — the
  legacy loop is quadratic, so the ratio grows with n);
* **scale tiers** — n=10k and n=100k run end-to-end by default
  (seconds, not minutes); set ``REPRO_BENCH_ENGINE_1M=1`` to add the
  million-job tier (the legacy scheduler would need hours for that DAG;
  the rewrite takes minutes);
* **regression gate** — the measured cost in microseconds per event and
  per job at n=10k lands in ``engine_throughput_report.json``; CI
  compares it against the committed
  ``baseline_engine_throughput.json`` via ``repro-report compare
  --fail-on`` (costs, not rates, so "higher is worse" matches the
  tooling's threshold semantics).

CI runs the smoke tier only (``REPRO_BENCH_ENGINE_NS=10000``) to keep
the job fast; the defaults here are the developer-facing tiers.
"""

import json
import os
import time

from conftest import RESULTS_DIR, update_bench_report, write_result

from repro.dagman.dag import Dag, DagJob
from repro.dagman.events import JobAttempt, JobStatus
from repro.dagman.legacy import LegacyRescanScheduler
from repro.dagman.scheduler import DagmanScheduler
from repro.sim.engine import Simulator

SPEEDUP_N = 10_000
MIN_SPEEDUP = 10.0

WIDTH = 100  # jobs per layer of the synthetic DAG


def _tiers() -> tuple[int, ...]:
    env = os.environ.get("REPRO_BENCH_ENGINE_NS")
    if env:
        return tuple(int(tok) for tok in env.replace(",", " ").split())
    tiers = [10_000, 100_000]
    if os.environ.get("REPRO_BENCH_ENGINE_1M"):
        tiers.append(1_000_000)
    return tuple(tiers)


def layered_dag(n: int, width: int = WIDTH) -> Dag:
    """A dense-enough layered DAG: ``width`` jobs per layer, each
    depending on two jobs of the previous layer, with mixed priorities
    so the ready heap actually has ordering work to do."""
    dag = Dag(name=f"layered-{n}")
    names = [f"j{i:07d}" for i in range(n)]
    for i, name in enumerate(names):
        dag.add_job(
            DagJob(
                name=name,
                transformation="synthetic",
                runtime=1.0 + (i % 7),
                priority=(i * 31) % 5 - 2,
            )
        )
    for i in range(width, n):
        base = (i // width - 1) * width
        dag.add_edge(names[base + i % width], names[i])
        dag.add_edge(names[base + (i + 1) % width], names[i])
    return dag


class FastEnvironment:
    """Minimal simulator-backed environment: every attempt succeeds
    after its runtime. The cheapest honest completion path — what's
    left is scheduler + engine overhead, which is what we measure."""

    def __init__(self) -> None:
        self.sim = Simulator()

    @property
    def now(self) -> float:
        return self.sim.now

    def submit(self, job, on_complete, *, attempt=1):
        submit_time = self.sim.now

        def finish() -> None:
            now = self.sim.now
            on_complete(
                JobAttempt(
                    job_name=job.name,
                    transformation=job.transformation,
                    site="bench",
                    machine="m",
                    attempt=attempt,
                    submit_time=submit_time,
                    setup_start=submit_time,
                    exec_start=submit_time,
                    exec_end=now,
                    status=JobStatus.SUCCEEDED,
                )
            )

        self.sim.schedule(job.runtime, finish)

    def run_until_complete(self) -> None:
        self.sim.run()


def _timed_run(scheduler_cls, dag: Dag) -> dict:
    env = FastEnvironment()
    scheduler = scheduler_cls(dag, env, max_jobs=WIDTH * 2)
    started = time.perf_counter()
    result = scheduler.run()
    elapsed = time.perf_counter() - started
    assert result.success, f"{scheduler_cls.__name__} bench run failed"
    assert len(result.trace) == len(dag.jobs)
    events = env.sim.processed
    return {
        "jobs": len(dag.jobs),
        "events": events,
        "elapsed_s": elapsed,
        "jobs_per_s": len(dag.jobs) / elapsed,
        "events_per_s": events / elapsed,
        "us_per_job": elapsed / len(dag.jobs) * 1e6,
        "us_per_event": elapsed / events * 1e6,
    }


def test_engine_throughput():
    lines = ["Engine/scheduler throughput — layered synthetic DAG", ""]

    # -- speedup over the legacy full-rescan scheduler ------------------
    dag = layered_dag(SPEEDUP_N)
    legacy = _timed_run(LegacyRescanScheduler, dag)
    smoke = _timed_run(DagmanScheduler, dag)
    speedup = smoke["jobs_per_s"] / legacy["jobs_per_s"]
    lines += [
        f"n={SPEEDUP_N:,}  legacy rescan: {legacy['jobs_per_s']:,.0f} jobs/s "
        f"({legacy['elapsed_s']:.2f}s)",
        f"n={SPEEDUP_N:,}  incremental:   {smoke['jobs_per_s']:,.0f} jobs/s "
        f"({smoke['elapsed_s']:.2f}s)",
        f"speedup: {speedup:,.1f}x (gate: >= {MIN_SPEEDUP:g}x)",
        "",
    ]
    assert speedup >= MIN_SPEEDUP, (
        f"incremental scheduler only {speedup:.1f}x faster than the "
        f"legacy rescan at n={SPEEDUP_N} (want >= {MIN_SPEEDUP:g}x)"
    )

    # -- scale tiers ----------------------------------------------------
    tiers = {}
    for n in _tiers():
        run = smoke if n == SPEEDUP_N else _timed_run(
            DagmanScheduler, layered_dag(n)
        )
        tiers[str(n)] = run
        lines.append(
            f"n={n:>9,}  {run['jobs_per_s']:>10,.0f} jobs/s  "
            f"{run['events_per_s']:>10,.0f} events/s  "
            f"({run['elapsed_s']:.2f}s, {run['events']:,} events)"
        )

    write_result("engine_throughput", "\n".join(lines))
    update_bench_report(
        "engine_throughput",
        {
            "speedup_vs_legacy": speedup,
            "legacy_n10k": legacy,
            "tiers": tiers,
        },
    )

    # -- the regression-gate report (repro-report compare --fail-on) ----
    report = {
        "schema": "repro-report/1",
        "label": f"engine-throughput-n{SPEEDUP_N}",
        "workflow": f"layered-{SPEEDUP_N}",
        "engine": {
            "us_per_event": smoke["us_per_event"],
            "us_per_job": smoke["us_per_job"],
        },
    }
    path = RESULTS_DIR / "engine_throughput_report.json"
    path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
