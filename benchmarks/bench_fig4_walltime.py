"""Fig. 4 — workflow wall time: serial vs Sandhills vs OSG, n sweep.

Paper claims verified here:

* the Pegasus implementation cuts the 100-hour serial run by >95 %;
* Sandhills beats OSG at every n, most visibly at small n;
* n=10 on Sandhills lands near the measured 41,593 s;
* n >= 100 plateaus near 10,000 s, with the optimum at moderate n.
"""

from conftest import NS, write_result

from repro.core.workflow_factory import simulate_paper_run
from repro.perfmodel.calibration import anchors
from repro.util.tables import Table
from repro.util.units import format_duration


def test_fig4_workflow_wall_time(fig4_data, paper_model, benchmark):
    a = anchors()
    serial = paper_model.serial_walltime()

    table = Table(
        ["configuration", "wall time (s)", "wall time",
         "reduction vs serial", "paper"],
        title="Fig. 4 — blast2cap3 wall time (median of 3 seeds)",
    )
    table.add_row("serial (modelled)", round(serial),
                  format_duration(serial), "-", "360,000 s (100 h)")
    paper_refs = {
        ("sandhills", 10): "41,593 s",
        ("sandhills", 100): "~10,000 s",
        ("sandhills", 300): "~10,000 s (optimum)",
        ("sandhills", 500): "~10,000 s",
    }
    for platform in ("sandhills", "osg"):
        for n in NS:
            wall = fig4_data[(platform, n)]
            table.add_row(
                f"{platform} n={n}",
                round(wall),
                format_duration(wall),
                f"{100 * (1 - wall / serial):.1f}%",
                paper_refs.get((platform, n), "> sandhills"),
            )
    write_result("fig4_walltime", table.render())

    # -- the paper's claims, as assertions --------------------------------
    for platform in ("sandhills", "osg"):
        for n in NS:
            wall = fig4_data[(platform, n)]
            assert wall < serial, "workflow must beat serial"
    # ">95% reduction" holds for every n >= 100 on both platforms and
    # for Sandhills at n=10 (OSG n=10 is the paper's worst case too).
    for platform in ("sandhills", "osg"):
        for n in (100, 300, 500):
            wall = fig4_data[(platform, n)]
            assert 1 - wall / serial > a.min_reduction_vs_serial

    # Sandhills beats OSG at every n.
    for n in NS:
        assert fig4_data[("sandhills", n)] < fig4_data[("osg", n)]

    # The absolute gap is most visible at small n.
    gap10 = fig4_data[("osg", 10)] - fig4_data[("sandhills", 10)]
    gap500 = fig4_data[("osg", 500)] - fig4_data[("sandhills", 500)]
    assert gap10 > gap500

    # Sandhills anchors: n=10 near 41,593 s; plateau near 10,000 s.
    assert abs(fig4_data[("sandhills", 10)] - a.sandhills_n10_s) < 0.25 * a.sandhills_n10_s
    for n in (100, 300, 500):
        assert 0.7 * a.sandhills_plateau_s < fig4_data[("sandhills", n)] < 1.5 * a.sandhills_plateau_s

    # n=300 is the Sandhills optimum across the swept values.
    sandhills = {n: fig4_data[("sandhills", n)] for n in NS}
    assert min(sandhills, key=sandhills.get) == a.optimal_n

    # benchmark: one representative paper-scale simulation.
    benchmark(lambda: simulate_paper_run(300, "sandhills", seed=0,
                                         model=paper_model))
