"""§VI-A claims about the cluster-count sweep on Sandhills.

* "The usage of 100 or more clusters of transcripts improves the
  running time on Sandhills for approximately 80 % compared to the
  running time of 10 clusters."
* "the usage of more than 100 clusters doesn't decrease this running
  time significantly"
* "the selection of 300 clusters gives the optimum performance"

This bench sweeps a finer grid than the paper to locate the optimum.
"""

from conftest import median_walltime, write_result

from repro.core.workflow_factory import simulate_paper_run
from repro.perfmodel.calibration import anchors
from repro.util.tables import Table

SWEEP = (10, 50, 100, 200, 300, 400, 500)


def test_cluster_count_sweep(paper_model, benchmark):
    a = anchors()
    walls = {
        n: median_walltime(n, "sandhills", model=paper_model) for n in SWEEP
    }

    table = Table(
        ["n", "sandhills wall (s)", "vs n=10"],
        title="Sandhills wall time vs cluster count (median of 3 seeds)",
    )
    for n in SWEEP:
        table.add_row(
            n, round(walls[n]), f"{100 * (1 - walls[n] / walls[10]):.1f}%"
        )
    write_result("cluster_sweep", table.render())

    # ~80% improvement from n=10 to n=100 (accept 65-90%).
    improvement = 1 - walls[100] / walls[10]
    assert 0.65 < improvement < 0.90

    # Beyond 100, changes are small: every n >= 100 within 35% of n=100.
    for n in (200, 300, 400, 500):
        assert abs(walls[n] - walls[100]) / walls[100] < 0.35

    # The optimum lies in the flat region at moderate n (the paper
    # measured 300; exact argmin depends on node-speed draws).
    best = min(walls, key=walls.get)
    assert best in (200, 300, 400)
    assert abs(walls[best] - walls[a.optimal_n]) / walls[a.optimal_n] < 0.15

    benchmark(lambda: simulate_paper_run(200, "sandhills", seed=0,
                                         model=paper_model))
