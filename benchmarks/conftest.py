"""Shared helpers for the benchmark harnesses.

Every figure/table benchmark writes its rendered table to
``benchmarks/results/<name>.txt`` (so the artifacts survive the run and
EXPERIMENTS.md can reference them) and asserts the paper's qualitative
claims about the data.

Figure reproductions simulate several seeds and take medians: the paper
itself warns that "the running time for the both platforms ... may vary
for every new run due to the availability of the current resources".
"""

from __future__ import annotations

import json
import statistics
from pathlib import Path

import pytest

from repro.core.workflow_factory import (
    build_blast2cap3_adag,
    default_catalogs,
    simulate_paper_run,
)
from repro.lint import lint, render_report
from repro.perfmodel.task_models import PaperTaskModel

RESULTS_DIR = Path(__file__).parent / "results"

#: Seeds used for median wall times in the figure benches.
SEEDS = (0, 1, 2)

#: The paper's n sweep.
NS = (10, 100, 300, 500)


def write_result(name: str, text: str) -> Path:
    """Persist a rendered table/report under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    return path


BENCH_REPORT = RESULTS_DIR / "BENCH_report.json"


def update_bench_report(section: str, payload: dict) -> Path:
    """Merge one bench's numbers into ``BENCH_report.json``.

    Benches run as separate pytest invocations in CI, so each one
    read-modify-writes its own section of the shared machine-readable
    report instead of owning the whole file. The result is the one
    document perf-trajectory tooling (and ``repro-report compare``'s
    committed baselines) key off.
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    doc: dict = {"schema": "repro-bench/1", "sections": {}}
    if BENCH_REPORT.exists():
        try:
            existing = json.loads(BENCH_REPORT.read_text())
            if existing.get("schema") == doc["schema"]:
                doc = existing
        except json.JSONDecodeError:
            pass  # corrupt artifact: rebuild from scratch
    doc.setdefault("sections", {})[section] = payload
    BENCH_REPORT.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    return BENCH_REPORT


def median_walltime(n: int, platform: str, *, model: PaperTaskModel,
                    seeds=SEEDS) -> float:
    """Median simulated wall time over seeds (all runs must succeed)."""
    walls = []
    for seed in seeds:
        result, _ = simulate_paper_run(n, platform, seed=seed, model=model)
        assert result.success, f"{platform} n={n} seed={seed} failed"
        walls.append(result.trace.wall_time())
    return statistics.median(walls)


@pytest.fixture(scope="session")
def paper_model() -> PaperTaskModel:
    return PaperTaskModel()


@pytest.fixture(scope="session", autouse=True)
def certified_workflows(paper_model):
    """Pre-flight lint: every benchmark workflow must be statically
    clean before any simulated cycle is spent on it."""
    sites, transformations, replicas = default_catalogs()
    for n in (min(NS), max(NS)):
        adag = build_blast2cap3_adag(n, model=paper_model)
        for platform in ("sandhills", "osg"):
            report = lint(
                adag,
                sites=sites,
                transformations=transformations,
                replicas=replicas,
                site=platform,
            )
            assert report.ok, render_report(report)


@pytest.fixture(scope="session")
def fig4_data(paper_model):
    """Median wall times for both platforms across the n sweep.

    Session-scoped: Fig. 4, Fig. 5, the speedup and sweep benches all
    share these runs.
    """
    data: dict[tuple[str, int], float] = {}
    for platform in ("sandhills", "osg"):
        for n in NS:
            data[(platform, n)] = median_walltime(
                n, platform, model=paper_model
            )
    return data
