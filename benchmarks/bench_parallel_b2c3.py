"""In-process parallel blast2cap3: wall-time table + cache speedup.

The paper's headline result is turning the serial per-cluster CAP3 loop
into parallel partitions. :func:`repro.core.parallel.blast2cap3_parallel`
is that optimisation without the workflow machinery; this bench measures
it on *real* CAP3 work at laptop scale and writes the speedup table to
``benchmarks/results/parallel_b2c3.txt``.

Assertions (the PR's acceptance criteria, scaled to CI):

* every mode produces record-for-record identical output;
* the **warm cache** run beats the serial loop (speedup >= 1) — it
  recomputes nothing, so this holds even on a single-core runner;
* warm-cache hits == mergeable cluster count and misses == 0 (zero
  CAP3 recomputations);
* on a multi-core box the process pool itself reaches speedup >= 1;
  on a single-core box we only bound its overhead, since no pool can
  beat serial there.
"""

import os
import time

from conftest import update_bench_report, write_result

from repro.core.blast2cap3 import blast2cap3_serial
from repro.core.cache import ResultCache
from repro.core.parallel import blast2cap3_parallel
from repro.datagen.transcripts import TranscriptomeSpec
from repro.datagen.workload import generate_blast2cap3_workload
from repro.util.tables import Table

#: Partition counts swept (the paper sweeps 10/100/300/500 at cluster
#: scale; at laptop scale the curve flattens past a handful).
PARTITIONS = (4, 8)


def _workload():
    # Even cluster sizes: with the generator's default skew one giant
    # cluster bounds the wall time and no parallel schedule could win.
    return generate_blast2cap3_workload(
        n_proteins=12,
        spec=TranscriptomeSpec(
            mean_fragments_per_gene=5.0,
            sigma_fragments=0.05,
            error_rate=0.002,
        ),
        seed=5,
    )


def _records(result):
    return [(r.id, r.seq) for r in result.output_records]


def test_parallel_and_cache_speedups(tmp_path, benchmark):
    wl = _workload()
    jobs = max(2, min(4, os.cpu_count() or 2))

    t0 = time.perf_counter()
    serial = blast2cap3_serial(wl.transcripts, wl.hits)
    serial_s = time.perf_counter() - t0
    reference = _records(serial)

    rows = [("serial", "-", "-", serial_s, 1.0, "-")]

    parallel_walls = []
    for n in PARTITIONS:
        t0 = time.perf_counter()
        result = blast2cap3_parallel(
            wl.transcripts, wl.hits, jobs=jobs, n=n, executor="process"
        )
        wall = time.perf_counter() - t0
        assert _records(result) == reference
        parallel_walls.append(wall)
        rows.append((f"parallel j={jobs}", n, "-", wall, serial_s / wall, "-"))

    cold_cache = ResultCache(tmp_path / "store")
    t0 = time.perf_counter()
    cold = blast2cap3_parallel(
        wl.transcripts, wl.hits, jobs=jobs, n=PARTITIONS[0],
        executor="process", cache=cold_cache,
    )
    cold_s = time.perf_counter() - t0
    assert _records(cold) == reference
    rows.append(
        ("parallel+cold cache", PARTITIONS[0], "-", cold_s,
         serial_s / cold_s,
         f"{cold_cache.stats.hits}/{cold_cache.stats.misses}")
    )

    warm_cache = ResultCache(tmp_path / "store")

    def warm_run():
        return blast2cap3_parallel(
            wl.transcripts, wl.hits, jobs=jobs, n=PARTITIONS[0],
            executor="process", cache=warm_cache,
        )

    t0 = time.perf_counter()
    warm = warm_run()
    warm_s = time.perf_counter() - t0
    assert _records(warm) == reference
    rows.append(
        ("parallel+warm cache", PARTITIONS[0], "-", warm_s,
         serial_s / warm_s,
         f"{warm_cache.stats.hits}/{warm_cache.stats.misses}")
    )

    table = Table(
        ["mode", "n", "jobs", "wall (s)", "speedup", "cache hit/miss"],
        title=(
            f"blast2cap3: serial vs in-process parallel "
            f"({len(wl.transcripts)} transcripts, "
            f"{serial.mergeable_cluster_count} mergeable clusters, "
            f"{os.cpu_count()} CPUs)"
        ),
    )
    for mode, n, j, wall, speedup, cache_col in rows:
        table.add_row(mode, n, j, f"{wall:.2f}", f"{speedup:.2f}x", cache_col)
    write_result("parallel_b2c3", table.render())
    update_bench_report(
        "parallel_b2c3",
        {
            "cpus": os.cpu_count(),
            "jobs": jobs,
            "transcripts": len(wl.transcripts),
            "mergeable_clusters": serial.mergeable_cluster_count,
            "serial_s": round(serial_s, 4),
            "parallel_s": {
                str(n): round(wall, 4)
                for n, wall in zip(PARTITIONS, parallel_walls)
            },
            "cold_cache_s": round(cold_s, 4),
            "warm_cache_s": round(warm_s, 4),
            "warm_cache_speedup": round(serial_s / warm_s, 4),
        },
    )

    # Zero CAP3 recomputations on the warm store.
    assert warm_cache.stats.hits == serial.mergeable_cluster_count
    assert warm_cache.stats.misses == 0

    # The warm cache must beat the serial loop outright, any hardware.
    assert warm_s < serial_s, (
        f"warm cache ({warm_s:.2f}s) did not beat serial ({serial_s:.2f}s)"
    )

    if (os.cpu_count() or 1) > 1:
        # Real parallel speedup needs real cores.
        best = min(parallel_walls)
        assert serial_s / best >= 1.0, (
            f"parallel ({best:.2f}s) slower than serial ({serial_s:.2f}s) "
            f"on a {os.cpu_count()}-core box"
        )
    else:
        # Single core: only bound the pool's overhead.
        assert min(parallel_walls) < 2.0 * serial_s

    benchmark.pedantic(warm_run, rounds=3, iterations=1)
