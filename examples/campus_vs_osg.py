#!/usr/bin/env python
"""The paper's headline experiment, at paper scale, in simulation.

Runs the blast2cap3 workflow on the Sandhills campus-cluster model and
the OSG opportunistic-grid model for n ∈ {10, 100, 300, 500}, prints the
Fig. 4 wall-time comparison and a per-task breakdown for one
configuration (Fig. 5's ingredients), and regenerates the Fig. 2/3 DAG
drawings as DOT files.

Run:  python examples/campus_vs_osg.py
"""

import tempfile
from pathlib import Path

from repro.core.workflow_factory import (
    build_blast2cap3_adag,
    simulate_paper_run,
    workflow_figure,
)
from repro.perfmodel.task_models import PaperTaskModel
from repro.util.tables import Table
from repro.util.units import format_duration
from repro.wms.statistics import per_transformation, summarize


def main() -> None:
    model = PaperTaskModel()
    serial = model.serial_walltime()
    ns = (10, 100, 300, 500)

    print(f"serial blast2cap3 (modelled): {format_duration(serial)}")
    print()

    table = Table(
        ["n", "sandhills wall (s)", "osg wall (s)",
         "sandhills reduction", "osg retries"],
        title="Fig. 4 — workflow wall time by platform and cluster count",
    )
    per_task_example = None
    for n in ns:
        campus, _ = simulate_paper_run(n, "sandhills", seed=1, model=model)
        grid, _ = simulate_paper_run(n, "osg", seed=1, model=model)
        assert campus.success and grid.success
        campus_wall = campus.trace.wall_time()
        grid_wall = grid.trace.wall_time()
        table.add_row(
            n,
            round(campus_wall),
            round(grid_wall),
            f"{100 * (1 - campus_wall / serial):.1f}%",
            grid.trace.retry_count,
        )
        if n == 100:
            per_task_example = (campus.trace, grid.trace)
    print(table.render())
    print()

    campus_trace, grid_trace = per_task_example
    breakdown = Table(
        ["transformation", "platform", "mean kickstart (s)",
         "mean waiting (s)", "mean download/install (s)"],
        title="Fig. 5 (n=100) — per-task running time breakdown",
    )
    for platform, trace in (("sandhills", campus_trace), ("osg", grid_trace)):
        for t in per_transformation(trace):
            breakdown.add_row(
                t.transformation, platform,
                round(t.mean_kickstart, 1),
                round(t.mean_waiting, 1),
                round(t.mean_download_install, 1),
            )
    print(breakdown.render())
    print()

    stats = summarize(grid_trace)
    print(f"OSG n=100: {stats.failed_attempts} failed/evicted attempts, "
          f"{stats.retries} DAGMan retries, speedup {stats.speedup:.1f}x")

    outdir = Path(tempfile.mkdtemp(prefix="blast2cap3-figs-"))
    adag = build_blast2cap3_adag(10, model=model)
    workflow_figure(adag).write(outdir / "fig2_sandhills.dot")
    workflow_figure(adag, osg=True).write(outdir / "fig3_osg.dot")
    print(f"\nFig. 2/3 DAGs written to {outdir}/fig2_sandhills.dot and fig3_osg.dot")


if __name__ == "__main__":
    main()
