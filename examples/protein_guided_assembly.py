#!/usr/bin/env python
"""The full blast2cap3 stack, end to end, on real computation.

Unlike the quickstart (which uses oracle alignments), this example runs
every stage for real at laptop scale:

1. generate a protein database and a fragmented transcriptome,
2. run the **actual BLASTX-like translated search** against the DB,
3. write the two paper input files (``transcripts.fasta``,
   ``alignments.out``) to disk,
4. execute blast2cap3 both **serially** and as a **Pegasus-style
   workflow under DAGMan** on the local thread-pool backend,
5. verify both produce the identical merged transcriptome, and print
   the pegasus-statistics report for the workflow run.

Run:  python examples/protein_guided_assembly.py
"""

import tempfile
import time
from pathlib import Path

from repro.bio.fasta import read_fasta, write_fasta
from repro.blast.blastx import BlastXParams
from repro.blast.tabular import write_tabular
from repro.core.blast2cap3 import blast2cap3_serial
from repro.core.workflow_factory import run_local
from repro.datagen.transcripts import TranscriptomeSpec
from repro.datagen.workload import generate_blast2cap3_workload
from repro.wms.statistics import render_report, summarize


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="blast2cap3-example-"))
    print(f"working in {workdir}")

    # 1-2. workload with a real translated search (this is the slow bit).
    t0 = time.perf_counter()
    workload = generate_blast2cap3_workload(
        n_proteins=8,
        spec=TranscriptomeSpec(
            mean_fragments_per_gene=3.0,
            noise_transcripts=3,
            error_rate=0.001,
        ),
        seed=7,
        alignments="blastx",
        blast_params=BlastXParams(),
    )
    print(
        f"BLASTX search: {len(workload.transcripts)} transcripts vs "
        f"{len(workload.proteins)} proteins -> {len(workload.hits)} hits "
        f"({time.perf_counter() - t0:.1f}s)"
    )

    # 3. the paper's two input files.
    transcripts_path = workdir / "transcripts.fasta"
    alignments_path = workdir / "alignments.out"
    write_fasta(transcripts_path, workload.transcripts)
    write_tabular(alignments_path, workload.hits)

    # 4a. the original serial script.
    t0 = time.perf_counter()
    serial = blast2cap3_serial(workload.transcripts, workload.hits)
    serial_s = time.perf_counter() - t0
    print(
        f"serial blast2cap3: {serial.input_count} -> {serial.output_count} "
        f"sequences ({100 * serial.reduction_fraction:.1f}% reduction) "
        f"in {serial_s:.1f}s"
    )

    # 4b. the Pegasus-style workflow on the local backend.
    t0 = time.perf_counter()
    wf = run_local(
        transcripts_path,
        alignments_path,
        workdir / "scratch",
        n=4,
        max_workers=4,
    )
    wf_s = time.perf_counter() - t0
    assert wf.dagman.success, wf.dagman.failed_jobs
    print(f"workflow blast2cap3 (n=4): finished in {wf_s:.1f}s")

    # 5. parity check + statistics.
    serial_records = {(r.id, r.seq) for r in serial.output_records}
    wf_records = {(r.id, r.seq) for r in read_fasta(wf.final_output)}
    assert serial_records == wf_records, "workflow output != serial output"
    print("parity: workflow output identical to the serial script's ✓")
    print()
    print(render_report(summarize(wf.dagman.trace), title="local workflow run"))


if __name__ == "__main__":
    main()
