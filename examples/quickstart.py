#!/usr/bin/env python
"""Quickstart: protein-guided assembly in ~40 lines.

Generates a small synthetic workload (a protein database plus redundant,
fragmented transcripts derived from it), runs the serial blast2cap3
algorithm, and prints what happened — the 60-second tour of the library.

Run:  python examples/quickstart.py
"""

from repro.core.blast2cap3 import blast2cap3_serial
from repro.core.workflow_factory import build_blast2cap3_adag, default_catalogs
from repro.datagen.transcripts import TranscriptomeSpec
from repro.datagen.workload import generate_blast2cap3_workload
from repro.lint import lint
from repro.util.tables import Table


def main() -> None:
    # 0. Pre-flight: the same computation, phrased as a Pegasus-style
    #    workflow, passes the static linter before anything runs (the
    #    `repro-lint` CLI does this for any DAX; planning does it
    #    automatically).
    sites, transformations, replicas = default_catalogs()
    report = lint(
        build_blast2cap3_adag(4),
        sites=sites,
        transformations=transformations,
        replicas=replicas,
        site="sandhills",
    )
    print(
        f"pre-flight lint: {report.verdict} — "
        f"{len(report.errors())} error(s), "
        f"{len(report.warnings())} warning(s)"
    )
    print()
    # 1. A synthetic workload: 15 reference proteins, ~3 transcript
    #    fragments per gene, a few unrelated "noise" transcripts, and
    #    oracle BLASTX alignments (swap alignments="blastx" to run the
    #    real translated search instead).
    workload = generate_blast2cap3_workload(
        n_proteins=15,
        spec=TranscriptomeSpec(
            mean_fragments_per_gene=3.0,
            noise_transcripts=5,
            error_rate=0.002,
        ),
        seed=42,
    )
    print(
        f"workload: {len(workload.transcripts)} transcripts, "
        f"{len(workload.hits)} BLASTX hits, "
        f"{len(workload.proteins)} reference proteins"
    )

    # 2. Protein-guided assembly: cluster transcripts by shared best
    #    protein hit, merge each cluster with the CAP3-like assembler.
    result = blast2cap3_serial(workload.transcripts, workload.hits)

    # 3. What happened.
    table = Table(["metric", "value"], title="blast2cap3 summary")
    table.add_row("input transcripts", result.input_count)
    table.add_row("protein clusters", result.cluster_count)
    table.add_row("clusters sent to CAP3", result.mergeable_cluster_count)
    table.add_row("transcripts merged into contigs", result.merged_transcript_count)
    table.add_row("contigs produced", len(result.joined))
    table.add_row("unjoined transcripts", len(result.unjoined))
    table.add_row("output sequences", result.output_count)
    table.add_row(
        "reduction", f"{100 * result.reduction_fraction:.1f}%"
    )
    print()
    print(table.render())

    print()
    print("first contig:", result.joined[0].id, f"({len(result.joined[0])} bp)")


if __name__ == "__main__":
    main()
