#!/usr/bin/env python
"""Failure handling: DAGMan retries, the analyzer, and rescue DAGs.

Demonstrates the error-recovery machinery the paper leans on for OSG:

1. run the blast2cap3 workflow on an OSG model with *hostile* settings
   (frequent preemption, dead-on-arrival nodes) and a low retry budget,
   so some jobs fail permanently;
2. inspect the wreck with the pegasus-analyzer equivalent;
3. write a rescue DAG, "fix the problem" (sane retry budget), and
   resubmit — only the unfinished work re-runs.

Run:  python examples/rescue_and_retry.py
"""

import tempfile
from pathlib import Path

from repro.core.workflow_factory import build_blast2cap3_adag, default_catalogs
from repro.dagman.dag import Dag
from repro.dagman.scheduler import DagmanScheduler
from repro.perfmodel.task_models import PaperTaskModel
from repro.sim.engine import Simulator
from repro.sim.failures import FailureModel
from repro.sim.grid import GridConfig, OpportunisticGrid
from repro.sim.rng import RngStreams
from repro.wms.analyzer import analyze, render_analysis
from repro.wms.planner import PlannerOptions, plan


def build_planned(retries: int):
    model = PaperTaskModel()
    adag = build_blast2cap3_adag(20, model=model)
    sites, transformations, replicas = default_catalogs()
    return plan(
        adag,
        site_name="osg",
        sites=sites,
        transformations=transformations,
        replicas=replicas,
        options=PlannerOptions(retries=retries),
    )


def hostile_grid(simulator: Simulator, seed: int) -> OpportunisticGrid:
    config = GridConfig(
        failures=FailureModel(
            start_failure_prob=0.25,          # many misconfigured nodes
            eviction_rate_per_s=1 / 4000.0,   # aggressive VO preemption
        ),
    )
    return OpportunisticGrid(simulator, config, streams=RngStreams(seed=seed))


def main() -> None:
    # 1. first submission: low retry budget on a hostile grid.
    planned = build_planned(retries=1)
    scheduler = DagmanScheduler(planned.dag, hostile_grid(Simulator(), seed=3))
    result = scheduler.run()
    print(f"first submission: success={result.success}, "
          f"{result.trace.retry_count} retries, "
          f"{len(result.trace.failures())} failed/evicted attempts")

    # 2. post-mortem.
    print()
    print(render_analysis(analyze(result)))

    if result.success:
        print("\n(unlucky seed: everything survived; try another seed)")
        return

    # 3. rescue DAG: completed jobs are marked DONE and skipped on
    #    resubmission, exactly like *.rescue001 files.
    rescue_path = Path(tempfile.mkdtemp(prefix="rescue-")) / "wf.rescue001"
    scheduler.write_rescue(rescue_path)
    done_marks = sum(
        1 for line in rescue_path.read_text().splitlines()
        if line.startswith("DONE ")
    )
    print(f"\nrescue DAG written to {rescue_path} ({done_marks} jobs DONE)")

    # The "fix": a sane retry budget, resubmitted once the grid has
    # calmed down (default OSG failure rates instead of the hostile ones).
    fixed = build_planned(retries=25)
    rescue_dag = Dag(name=fixed.dag.name + ".rescue")
    for job in fixed.dag.jobs.values():
        rescue_dag.add_job(job)
    for parent, child in fixed.dag.edges():
        rescue_dag.add_edge(parent, child)
    rescue_dag.done = Dag.parse_dagfile(rescue_path).done

    calm = OpportunisticGrid(Simulator(), streams=RngStreams(seed=4))
    resubmit = DagmanScheduler(rescue_dag, calm)
    result2 = resubmit.run()
    rerun = {a.job_name for a in result2.trace}
    print(f"resubmission: success={result2.success}, "
          f"re-ran {len(rerun)} of {len(rescue_dag)} jobs "
          f"({len(rescue_dag.done)} skipped as DONE)")


if __name__ == "__main__":
    main()
