#!/usr/bin/env python
"""The Fig. 1 general transcriptome assembly pipeline, end to end.

Simulates Illumina-like 100 bp paired-end reads from synthetic genes
(the paper's data was HiSeq2000 100 bp PE wheat reads), then runs the
whole pipeline for real: quality trimming/filtering → overlap assembly →
redundancy reduction → protein-guided merging (blast2cap3 with the real
BLASTX-like search).

Run:  python examples/transcriptome_pipeline.py
"""

from repro.core.pipeline import run_transcriptome_pipeline
from repro.core.validation import render_validation, validate_assembly
from repro.datagen.proteins import random_protein_db
from repro.datagen.reads import ReadSimSpec, simulate_paired_reads
from repro.datagen.transcripts import TranscriptomeSpec, generate_transcriptome
from repro.util.tables import Table


def main() -> None:
    # Synthetic "organism": 4 genes, one full-length transcript each.
    proteins = random_protein_db(4, seed=11, min_length=150, max_length=220)
    transcriptome = generate_transcriptome(
        proteins,
        TranscriptomeSpec(
            mean_fragments_per_gene=1.0,
            sigma_fragments=0.0,
            fragment_min_fraction=1.0,
            fragment_max_fraction=1.0,
            utr_length=0,
            error_rate=0.0,
            reverse_fraction=0.0,
        ),
        seed=12,
    )

    # Sequencing run: ~12x coverage of each transcript, paired-end.
    reads = []
    for record in transcriptome.transcripts:
        for r1, r2 in simulate_paired_reads(
            record.seq,
            ReadSimSpec(coverage=12.0, fragment_mean=250, fragment_sd=20),
            seed=abs(hash(record.id)) % 2**31,
            id_prefix=record.id,
        ):
            reads.extend((r1, r2))
    print(f"sequenced {len(reads)} reads from "
          f"{len(transcriptome.transcripts)} transcripts "
          f"({len(proteins)} genes)")

    result = run_transcriptome_pipeline(reads, proteins)

    table = Table(
        ["stage", "in", "out", "seconds"],
        title="Fig. 1 — transcriptome assembly pipeline stages",
    )
    for stage in result.stages:
        table.add_row(
            stage.name, stage.input_count, stage.output_count,
            round(stage.seconds, 2),
        )
    print()
    print(table.render())

    q = result.quality
    print()
    print(f"preprocessing: {q.passed}/{q.total} reads survived "
          f"({q.too_short} too short, {q.low_quality} low quality, "
          f"{q.too_many_n} N-rich)")
    print(f"final assembly: {len(result.transcripts)} sequences, "
          f"N50 = {result.n50} bp "
          f"(true transcripts: {len(transcriptome.transcripts)})")

    # Assembly validation — the pipeline's last Fig. 1 box.
    print()
    report = validate_assembly(result.transcripts, protein_db=proteins)
    print(render_validation(report, title="final assembly"))


if __name__ == "__main__":
    main()
