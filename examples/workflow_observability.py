#!/usr/bin/env python
"""Observability: live events, metrics, status, statistics, provenance.

One OSG run of the blast2cap3 workflow, inspected with every tool the
WMS and observe layers provide — the "automated complex analysis,
real-time results" story of the paper's introduction. The run is
instrumented end to end: an event bus carries every lifecycle event
(submit/match/exec/finish/evict/retry), a metrics registry aggregates
them, and a sampler measures slot utilization on the virtual clock.

Run:  python examples/workflow_observability.py
"""

from repro.core.workflow_factory import (
    build_blast2cap3_adag,
    simulate_paper_run,
)
from repro.observe import (
    EventBus,
    EventKind,
    EventRecorder,
    StatusView,
    UtilizationSample,
    instrument,
)
from repro.util.tables import Table
from repro.wms.analyzer import analyze, render_analysis
from repro.wms.monitor import progress_line
from repro.wms.plots import gantt, utilization, utilization_series
from repro.wms.provenance import ProvenanceDB
from repro.wms.statistics import (
    critical_path,
    per_site,
    render_report,
    summarize,
    summarize_events,
)


def main() -> None:
    n = 20
    bus = EventBus()
    recorder = EventRecorder(bus)
    metrics = instrument(bus)
    view = StatusView()
    bus.subscribe(view.update)
    result, planned = simulate_paper_run(
        n, "osg", seed=3, bus=bus, sample_interval_s=120.0
    )

    print("== status " + "=" * 50)
    print(progress_line(result.trace, total_jobs=len(planned.dag)))
    print()

    print("== live view (pegasus-status over the event bus) " + "=" * 11)
    print(view.render())
    print()

    print("== event bus " + "=" * 47)
    by_kind: dict[str, int] = {}
    for e in recorder.events:
        by_kind[e.kind.value] = by_kind.get(e.kind.value, 0) + 1
    print(f"{len(recorder.events)} events on the bus:")
    for kind, count in sorted(by_kind.items()):
        print(f"  {kind:20s} {count:5d}")
    # The stream is a faithful second witness: statistics computed from
    # events match pegasus-statistics over the scheduler's own trace.
    assert (
        summarize_events(recorder.events, dag=planned.dag).total_jobs
        == summarize(result.trace, dag=planned.dag).total_jobs
    )
    print()

    print("== metrics " + "=" * 49)
    snap = metrics.snapshot()
    for key, value in sorted(snap["counters"].items()):
        print(f"  {key:45s} {value}")
    for name, summary in sorted(snap["histograms"].items()):
        if name.startswith("kickstart_s"):
            print(f"  {name:45s} p50={summary['p50']:.0f}s "
                  f"p95={summary['p95']:.0f}s")
    print()

    print("== sampled utilization " + "=" * 37)
    samples = [
        UtilizationSample(e.time, e.detail["busy"], e.detail["idle"])
        for e in recorder.of_kind(EventKind.SAMPLE)
    ]
    print(utilization_series(samples, width=66))
    print()

    print("== statistics " + "=" * 46)
    print(render_report(summarize(result.trace), title=f"osg n={n}"))
    print()

    print("== gantt " + "=" * 51)
    print(gantt(result.trace, width=66, max_rows=18))
    print()

    print("== utilization " + "=" * 45)
    print(utilization(result.trace, bins=60))
    print()

    print("== per-site breakdown " + "=" * 38)
    site_table = Table(["site", "jobs", "failures", "mean kickstart (s)"])
    for s in per_site(result.trace):
        site_table.add_row(s.site, s.jobs, s.failures,
                           round(s.mean_kickstart, 1))
    print(site_table.render())
    print()

    print("== retrospective critical path " + "=" * 29)
    for a in critical_path(result.trace, planned.dag):
        print(f"  {a.job_name:28s} t={a.submit_time:8.0f}s .. "
              f"{a.exec_end:8.0f}s  (kickstart {a.kickstart_time:.0f}s)")
    print()

    print("== analyzer " + "=" * 48)
    print(render_analysis(analyze(result)))
    print()

    print("== provenance " + "=" * 46)
    adag = build_blast2cap3_adag(n)
    db = ProvenanceDB(adag)
    db.record_run(result.trace)
    print(db.report("joined_3.fasta"))
    print()
    print(
        "final output derives from: "
        + ", ".join(db.external_sources("merged_transcriptome.fasta"))
    )
    print(
        f"jobs contributing to it: "
        f"{len(db.contributing_jobs('merged_transcriptome.fasta'))}"
    )


if __name__ == "__main__":
    main()
