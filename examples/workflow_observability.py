#!/usr/bin/env python
"""Observability: status, statistics, gantt, utilization, provenance.

One OSG run of the blast2cap3 workflow, inspected with every tool the
WMS layer provides — the "automated complex analysis, real-time results"
story of the paper's introduction.

Run:  python examples/workflow_observability.py
"""

from repro.core.workflow_factory import (
    build_blast2cap3_adag,
    simulate_paper_run,
)
from repro.util.tables import Table
from repro.wms.analyzer import analyze, render_analysis
from repro.wms.monitor import progress_line
from repro.wms.plots import gantt, utilization
from repro.wms.provenance import ProvenanceDB
from repro.wms.statistics import (
    critical_path,
    per_site,
    render_report,
    summarize,
)


def main() -> None:
    n = 20
    result, planned = simulate_paper_run(n, "osg", seed=3)

    print("== status " + "=" * 50)
    print(progress_line(result.trace, total_jobs=len(planned.dag)))
    print()

    print("== statistics " + "=" * 46)
    print(render_report(summarize(result.trace), title=f"osg n={n}"))
    print()

    print("== gantt " + "=" * 51)
    print(gantt(result.trace, width=66, max_rows=18))
    print()

    print("== utilization " + "=" * 45)
    print(utilization(result.trace, bins=60))
    print()

    print("== per-site breakdown " + "=" * 38)
    site_table = Table(["site", "jobs", "failures", "mean kickstart (s)"])
    for s in per_site(result.trace):
        site_table.add_row(s.site, s.jobs, s.failures,
                           round(s.mean_kickstart, 1))
    print(site_table.render())
    print()

    print("== retrospective critical path " + "=" * 29)
    for a in critical_path(result.trace, planned.dag):
        print(f"  {a.job_name:28s} t={a.submit_time:8.0f}s .. "
              f"{a.exec_end:8.0f}s  (kickstart {a.kickstart_time:.0f}s)")
    print()

    print("== analyzer " + "=" * 48)
    print(render_analysis(analyze(result)))
    print()

    print("== provenance " + "=" * 46)
    adag = build_blast2cap3_adag(n)
    db = ProvenanceDB(adag)
    db.record_run(result.trace)
    print(db.report("joined_3.fasta"))
    print()
    print(
        "final output derives from: "
        + ", ".join(db.external_sources("merged_transcriptome.fasta"))
    )
    print(
        f"jobs contributing to it: "
        f"{len(db.contributing_jobs('merged_transcriptome.fasta'))}"
    )


if __name__ == "__main__":
    main()
